//! Checkpointed (incremental) trace verification.
//!
//! [`super::trace::verify_trace`] replays *complete* per-replica event logs,
//! so a long-running node would have to retain its entire history for the
//! oracle — exactly the O(history) growth the bounded-memory work removes.
//! This module lets a trace prefix be **verified, summarized, and
//! discarded**: a [`TraceCheckpoint`] captures everything later replays
//! need about a sealed log prefix, and
//! [`verify_trace_checkpointed`] stitches per-replica checkpoints and live
//! log suffixes back into one verdict.
//!
//! # What a checkpoint records
//!
//! Per replica, about its sealed (verified-and-discarded) prefix:
//!
//! * event / issue / apply counts and an order-sensitive digest — the
//!   "verified-prefix digest" that identifies which prefix was sealed;
//! * `last_issue` — the highest wire id among the replica's own sealed
//!   issues (wire ids are assigned monotonically per issuer, so this is an
//!   exact membership bound: a wire id at or below it *was* sealed);
//! * `applied_high[j]` — per issuer `j`, the highest wire id this replica
//!   applied inside its sealed prefix (the "clock state": a causally
//!   consistent replica applies each issuer's updates in issue order, so
//!   this is an exact per-issuer applied frontier);
//! * `frontier[x]` — per register, the wire id of the replica's last
//!   sealed local write.
//!
//! # Why stitching is equivalent to full replay
//!
//! The seal rule (enforced by the producer, e.g. the service node) is:
//! **an issue may be sealed only once every remote recipient has durably
//! acknowledged it; applies may seal freely.** Under that rule:
//!
//! * a dependency of a live update that lies in some sealed prefix was, by
//!   the seal rule, applied at every holder before anything live — so
//!   skipping its (already verified) safety re-check loses nothing;
//! * an apply of a *live* issue that a replica sealed is re-seeded into
//!   the fresh oracle via `applied_high` ([`crate::Oracle::seed_applied`]),
//!   restoring both the replica's causal closure and the liveness
//!   bookkeeping exactly;
//! * an apply of a *sealed* issue that is still live in some log (a
//!   "straggler" — the issuer compacted first) is recognized exactly via
//!   `last_issue` and checked for per-issuer causal order against
//!   `applied_high`; its full dependency check already happened when the
//!   issue's other applies were verified, before the seal.
//!
//! The only fidelity ceded is the full dependency re-check of straggler
//! applies (they are counted, so a caller can see how much of the verdict
//! rests on sealed history). On quiescent traces with no compaction the
//! function degenerates to — and is tested equivalent with —
//! [`super::trace::verify_trace`].

use crate::trace::{TraceError, TraceEvent};
use crate::{Oracle, Verdict};
use prcc_graph::{ReplicaId, ShareGraph};
use std::collections::{HashMap, HashSet};

/// FNV-1a step, used for the order-sensitive sealed-prefix digest.
fn fnv1a(mut hash: u64, bytes: &[u64]) -> u64 {
    for &word in bytes {
        for shift in [0u32, 16, 32, 48] {
            hash ^= u64::from((word >> shift) as u16);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// The FNV-1a offset basis — the digest of an empty sealed prefix.
const DIGEST_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// Summary of one replica's sealed (verified and discarded) log prefix.
///
/// Produced by [`TraceCheckpoint::absorb`]; consumed by
/// [`verify_trace_checkpointed`]. All wire ids must be nonzero (0 is the
/// "nothing sealed" sentinel throughout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheckpoint {
    /// Events sealed from this replica's log.
    pub events: u64,
    /// Issue events among them.
    pub issues: u64,
    /// Apply events among them.
    pub applies: u64,
    /// Highest wire id among this replica's own sealed issues (0 = none).
    /// Issues are logged in increasing wire-id order, so this bounds sealed
    /// issue membership exactly.
    pub last_issue: u64,
    /// Per issuer role: highest wire id applied (or self-issued) inside the
    /// sealed prefix (0 = none).
    pub applied_high: Vec<u64>,
    /// Per register: wire id of the last sealed local write (0 = none).
    pub frontier: Vec<u64>,
    /// Order-sensitive FNV-1a digest over the sealed events, chained across
    /// successive seals.
    pub digest: u64,
}

impl TraceCheckpoint {
    /// An empty checkpoint (nothing sealed) for a system of `roles`
    /// replicas and `registers` registers.
    pub fn new(roles: usize, registers: usize) -> Self {
        TraceCheckpoint {
            events: 0,
            issues: 0,
            applies: 0,
            last_issue: 0,
            applied_high: vec![0; roles],
            frontier: vec![0; registers],
            digest: DIGEST_SEED,
        }
    }

    /// True when no events have been sealed.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Folds a log prefix into the checkpoint. `issuer_of` maps a wire id
    /// to the role that issued it (used to maintain `applied_high` for
    /// apply events; unresolvable ids are skipped there but still counted
    /// and digested).
    ///
    /// The caller is responsible for the seal rule (see the module docs)
    /// and for discarding `events` from its live log afterwards.
    pub fn absorb<F>(&mut self, events: &[TraceEvent], issuer_of: F)
    where
        F: Fn(u64) -> Option<ReplicaId>,
    {
        for event in events {
            self.events += 1;
            match *event {
                TraceEvent::Issue {
                    replica,
                    register,
                    update,
                } => {
                    self.issues += 1;
                    self.last_issue = self.last_issue.max(update);
                    if let Some(slot) = self.frontier.get_mut(register.index()) {
                        *slot = update;
                    }
                    // The issuer applies its own update at issue time
                    // (step 2 of the prototype), so its applied frontier
                    // advances too.
                    if let Some(high) = self.applied_high.get_mut(replica.index()) {
                        *high = (*high).max(update);
                    }
                    self.digest = fnv1a(
                        self.digest,
                        &[0, replica.index() as u64, u64::from(register.0), update],
                    );
                }
                TraceEvent::Apply { replica, update } => {
                    self.applies += 1;
                    if let Some(issuer) = issuer_of(update) {
                        if let Some(high) = self.applied_high.get_mut(issuer.index()) {
                            *high = (*high).max(update);
                        }
                    }
                    self.digest = fnv1a(self.digest, &[1, replica.index() as u64, update]);
                }
            }
        }
    }
}

/// Outcome of a stitched (checkpoint + live suffix) verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointedVerdict {
    /// The causal-consistency verdict over the live events (sealed history
    /// was verified before it was sealed).
    pub verdict: Verdict,
    /// Total events covered by the checkpoints (all replicas).
    pub sealed_events: u64,
    /// Live applies of sealed issues — recognized via `last_issue`, held to
    /// per-issuer causal order, but exempt from the full dependency check
    /// (that ran before the issuer sealed).
    pub straggler_applies: u64,
}

impl CheckpointedVerdict {
    /// True when no safety or liveness violation was found.
    pub fn is_consistent(&self) -> bool {
        self.verdict.is_consistent()
    }
}

/// Replays per-replica live log suffixes against their sealed-prefix
/// checkpoints and returns the stitched verdict.
///
/// `parts[i]` is replica `i`'s `(checkpoint, live log)` pair; pass
/// [`TraceCheckpoint::new`] (empty) for replicas that never sealed —
/// with all-empty checkpoints this is exactly
/// [`super::trace::verify_trace`]. `issuer_of` maps a wire id to its
/// issuing role (the service derives it from the id's node bits and the
/// partition map); it is consulted for sealed ids only.
///
/// # Errors
///
/// The same structural [`TraceError`]s as `verify_trace`, evaluated
/// against the stitched view: a live issue reusing a sealed wire id is a
/// [`TraceError::DuplicateIssue`], an apply matching neither a live issue
/// nor any replica's sealed range is an [`TraceError::UnknownUpdate`].
pub fn verify_trace_checkpointed<F>(
    g: &ShareGraph,
    parts: &[(TraceCheckpoint, Vec<TraceEvent>)],
    issuer_of: F,
) -> Result<CheckpointedVerdict, TraceError>
where
    F: Fn(u64) -> Option<ReplicaId>,
{
    let checkpoints: Vec<&TraceCheckpoint> = parts.iter().map(|(c, _)| c).collect();
    let logs: Vec<&Vec<TraceEvent>> = parts.iter().map(|(_, l)| l).collect();
    let roles = g.num_replicas();

    // Pre-scan live issues: duplicates among the live events, and reuse of
    // a wire id the same replica already sealed (per-replica issue ids are
    // monotone, so `last_issue` bounds sealed membership exactly).
    let mut issued_ids = HashSet::new();
    for (log, checkpoint) in logs.iter().zip(&checkpoints) {
        for event in *log {
            if let TraceEvent::Issue { update, .. } = event {
                if !issued_ids.insert(*update)
                    || (checkpoint.issues > 0 && *update <= checkpoint.last_issue)
                {
                    return Err(TraceError::DuplicateIssue { update: *update });
                }
            }
        }
    }

    // Classify applies: live (verified by the oracle), sealed-straggler
    // (issuer sealed the issue first), or unknown (structural error).
    let sealed_issuer = |update: u64| -> Option<ReplicaId> {
        if issued_ids.contains(&update) {
            return None;
        }
        match issuer_of(update) {
            Some(j) => (checkpoints
                .get(j.index())
                .is_some_and(|c| c.issues > 0 && update <= c.last_issue))
            .then_some(j),
            // Unresolvable issuer: accept any replica whose sealed issue
            // range covers the id (conservative, used by checker-side
            // callers without a wire-id scheme).
            None => checkpoints
                .iter()
                .enumerate()
                .find(|(_, c)| c.issues > 0 && update <= c.last_issue)
                .map(|(j, _)| ReplicaId(j)),
        }
    };
    for log in &logs {
        for event in *log {
            if let TraceEvent::Apply { replica, update } = event {
                if !issued_ids.contains(update) && sealed_issuer(*update).is_none() {
                    return Err(TraceError::UnknownUpdate {
                        replica: *replica,
                        update: *update,
                    });
                }
            }
        }
    }

    // A replica whose sealed prefix applied still-live issues must not
    // process any live event before those issues are scheduled and seeded
    // into its closure (its sealed applies all precede its whole live
    // log). `required[i]` counts the live issues replica i still waits
    // for; the count only reaches zero in an order consistent with real
    // time, because sealed-apply-of-live-issue pairs follow issue order.
    let mut required = vec![0usize; logs.len()];
    for log in &logs {
        for event in *log {
            if let TraceEvent::Issue {
                replica,
                register,
                update,
            } = event
            {
                for (k, checkpoint) in checkpoints.iter().enumerate() {
                    if k < roles
                        && checkpoint
                            .applied_high
                            .get(replica.index())
                            .is_some_and(|&high| *update <= high)
                        && g.stores(ReplicaId(k), *register)
                    {
                        required[k] += 1;
                    }
                }
            }
        }
    }

    let mut oracle = Oracle::new(g);
    let mut verdict = Verdict::default();
    let mut ids = HashMap::new();
    let mut heads = vec![0usize; logs.len()];
    let mut straggler_applies = 0u64;
    // Per (replica, issuer): highest wire id applied so far, seeded from
    // the sealed frontier — the per-issuer causal-order check stragglers
    // are held to.
    let mut last_applied: Vec<Vec<u64>> = checkpoints
        .iter()
        .map(|c| {
            let mut row = c.applied_high.clone();
            row.resize(roles, 0);
            row
        })
        .collect();
    let remaining =
        |heads: &[usize]| -> usize { logs.iter().zip(heads).map(|(log, &h)| log.len() - h).sum() };

    loop {
        let mut progressed = false;
        for (i, (log, head)) in logs.iter().zip(heads.iter_mut()).enumerate() {
            if required[i] > 0 {
                continue; // Gated until its sealed applies are seeded.
            }
            while let Some(event) = log.get(*head) {
                match *event {
                    TraceEvent::Issue {
                        replica,
                        register,
                        update,
                    } => {
                        let oracle_id = oracle.on_issue(replica, register);
                        ids.insert(update, oracle_id);
                        // Seed every replica whose sealed prefix recorded
                        // an apply of this (still live) issue.
                        for (k, checkpoint) in checkpoints.iter().enumerate() {
                            if k < roles
                                && checkpoint
                                    .applied_high
                                    .get(replica.index())
                                    .is_some_and(|&high| update <= high)
                                && g.stores(ReplicaId(k), register)
                            {
                                oracle.seed_applied(ReplicaId(k), oracle_id);
                                last_applied[k][replica.index()] =
                                    last_applied[k][replica.index()].max(update);
                                required[k] -= 1;
                            }
                        }
                    }
                    TraceEvent::Apply { replica, update } => {
                        if let Some(&oracle_id) = ids.get(&update) {
                            if !g.stores(replica, oracle.register(oracle_id)) {
                                return Err(TraceError::ApplyAtNonHolder { replica, update });
                            }
                            if let Err(violation) = oracle.on_apply(replica, oracle_id) {
                                verdict.safety.push(violation);
                            }
                            let issuer = oracle.issuer(oracle_id).index();
                            last_applied[i][issuer] = last_applied[i][issuer].max(update);
                        } else if issued_ids.contains(&update) {
                            // Issue not yet scheduled; try another log.
                            break;
                        } else {
                            // Straggler: the issuer sealed this issue. Its
                            // dependency check ran before the seal; hold it
                            // to per-issuer causal order against the
                            // replica's applied frontier.
                            let issuer = sealed_issuer(update)
                                .expect("classified in the pre-scan")
                                .index();
                            straggler_applies += 1;
                            if update <= last_applied[i][issuer] {
                                verdict.safety.push(crate::SafetyViolation {
                                    replica,
                                    applied: crate::UpdateId(update),
                                    missing: crate::UpdateId(last_applied[i][issuer]),
                                });
                            } else {
                                last_applied[i][issuer] = update;
                            }
                        }
                    }
                }
                *head += 1;
                progressed = true;
            }
        }
        if remaining(&heads) == 0 && required.iter().all(|&r| r == 0) {
            break;
        }
        if !progressed {
            return Err(TraceError::NoConsistentOrder {
                remaining: remaining(&heads).max(1),
            });
        }
    }

    verdict.liveness = oracle.check_liveness();
    Ok(CheckpointedVerdict {
        verdict,
        sealed_events: checkpoints.iter().map(|c| c.events).sum(),
        straggler_applies,
    })
}

/// Per-partition stitched verification:
/// `parts[p]` holds partition `p`'s per-role `(checkpoint, live log)`
/// pairs. Each partition is an independent instance of `g`; see
/// [`super::trace::verify_partitions`] for the sharding rationale.
///
/// `issuer_of(p, wire_id)` maps a wire id to its issuing role *within
/// partition `p`*.
pub fn verify_partitions_checkpointed<F>(
    g: &ShareGraph,
    parts: &[Vec<(TraceCheckpoint, Vec<TraceEvent>)>],
    issuer_of: F,
) -> Vec<Result<CheckpointedVerdict, TraceError>>
where
    F: Fn(usize, u64) -> Option<ReplicaId>,
{
    parts
        .iter()
        .enumerate()
        .map(|(p, pairs)| verify_trace_checkpointed(g, pairs, |w| issuer_of(p, w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::verify_trace;
    use prcc_graph::{topologies, RegisterId};

    /// Wire ids in these tests mimic the service: `replica << 40 | seq`,
    /// monotone per issuer, never zero.
    fn wire(replica: usize, seq: u64) -> u64 {
        ((replica as u64) << 40) | seq
    }

    fn issuer_of(w: u64) -> Option<ReplicaId> {
        Some(ReplicaId((w >> 40) as usize))
    }

    fn issue(replica: usize, register: u32, update: u64) -> TraceEvent {
        TraceEvent::Issue {
            replica: ReplicaId(replica),
            register: RegisterId(register),
            update,
        }
    }

    fn apply(replica: usize, update: u64) -> TraceEvent {
        TraceEvent::Apply {
            replica: ReplicaId(replica),
            update,
        }
    }

    /// Pairs each log with an empty checkpoint (nothing sealed).
    fn with_empty(
        g: &ShareGraph,
        logs: &[Vec<TraceEvent>],
    ) -> Vec<(TraceCheckpoint, Vec<TraceEvent>)> {
        logs.iter()
            .map(|log| {
                (
                    TraceCheckpoint::new(g.num_replicas(), g.num_registers()),
                    log.clone(),
                )
            })
            .collect()
    }

    /// Seals `cut[i]` events off each log into fresh checkpoints and
    /// returns `(checkpoint, remaining suffix)` pairs.
    fn seal(
        g: &ShareGraph,
        logs: &[Vec<TraceEvent>],
        cut: &[usize],
    ) -> Vec<(TraceCheckpoint, Vec<TraceEvent>)> {
        logs.iter()
            .zip(cut)
            .map(|(log, &k)| {
                let mut checkpoint = TraceCheckpoint::new(g.num_replicas(), g.num_registers());
                checkpoint.absorb(&log[..k], issuer_of);
                (checkpoint, log[k..].to_vec())
            })
            .collect()
    }

    #[test]
    fn empty_checkpoints_match_plain_verification() {
        let g = topologies::clique_full(3, 1);
        let logs = vec![
            vec![issue(0, 0, wire(0, 1)), apply(0, wire(1, 1))],
            vec![apply(1, wire(0, 1)), issue(1, 0, wire(1, 1))],
            vec![apply(2, wire(0, 1)), apply(2, wire(1, 1))],
        ];
        let full = verify_trace(&g, &logs).unwrap();
        let stitched = verify_trace_checkpointed(&g, &with_empty(&g, &logs), issuer_of).unwrap();
        assert_eq!(stitched.verdict, full);
        assert_eq!(stitched.sealed_events, 0);
        assert_eq!(stitched.straggler_applies, 0);
    }

    #[test]
    fn straggler_applies_of_sealed_issues_are_recognized() {
        // Replica 0 sealed its issue of u=(0,1); replica 1's apply is still
        // live. The stitched verdict must stay consistent and count it.
        let g = topologies::line(2);
        let full_logs = vec![vec![issue(0, 0, wire(0, 1))], vec![apply(1, wire(0, 1))]];
        let parts = seal(&g, &full_logs, &[1, 0]);
        assert_eq!(parts[0].0.issues, 1);
        assert_eq!(parts[0].0.last_issue, wire(0, 1));
        let stitched = verify_trace_checkpointed(&g, &parts, issuer_of).unwrap();
        assert!(stitched.is_consistent(), "{stitched:?}");
        assert_eq!(stitched.straggler_applies, 1);
        assert_eq!(stitched.sealed_events, 1);
    }

    #[test]
    fn sealed_apply_of_live_issue_seeds_the_oracle() {
        // Replica 1 sealed its apply of u, but replica 0's issue of u is
        // live. Without seeding, liveness would flag u unapplied at 1 and
        // the later causal chain would misfire.
        let g = topologies::clique_full(3, 1);
        let full_logs = vec![
            vec![issue(0, 0, wire(0, 1)), apply(0, wire(1, 1))],
            vec![apply(1, wire(0, 1)), issue(1, 0, wire(1, 1))],
            vec![apply(2, wire(0, 1)), apply(2, wire(1, 1))],
        ];
        // Seal only replica 1's apply of u (prefix length 1).
        let parts = seal(&g, &full_logs, &[0, 1, 0]);
        assert_eq!(parts[1].0.applied_high[0], wire(0, 1));
        let stitched = verify_trace_checkpointed(&g, &parts, issuer_of).unwrap();
        assert!(stitched.is_consistent(), "{stitched:?}");
        assert_eq!(stitched.straggler_applies, 0);
    }

    #[test]
    fn straggler_reorder_against_sealed_frontier_is_flagged() {
        // Replica 0 sealed issues u1 < u2; replica 1 applies them out of
        // order (u2 then u1) in its live log. Even without the sealed
        // pasts, the per-issuer frontier catches the inversion.
        let g = topologies::line(2);
        let full_logs = vec![
            vec![issue(0, 0, wire(0, 1)), issue(0, 0, wire(0, 2))],
            vec![apply(1, wire(0, 2)), apply(1, wire(0, 1))],
        ];
        let parts = seal(&g, &full_logs, &[2, 0]);
        let stitched = verify_trace_checkpointed(&g, &parts, issuer_of).unwrap();
        assert_eq!(stitched.verdict.safety.len(), 1);
        assert_eq!(stitched.verdict.safety[0].replica, ReplicaId(1));
        assert_eq!(stitched.straggler_applies, 2);
    }

    #[test]
    fn sealed_issue_with_live_reissue_is_a_duplicate() {
        let g = topologies::line(2);
        let full_logs = vec![vec![issue(0, 0, wire(0, 1))], vec![apply(1, wire(0, 1))]];
        // The live log re-issues the sealed wire id.
        let live = [vec![issue(0, 0, wire(0, 1))], vec![]];
        let parts: Vec<_> = seal(&g, &full_logs, &[1, 0])
            .into_iter()
            .zip(live)
            .map(|((checkpoint, _), log)| (checkpoint, log))
            .collect();
        assert_eq!(
            verify_trace_checkpointed(&g, &parts, issuer_of),
            Err(TraceError::DuplicateIssue { update: wire(0, 1) })
        );
    }

    #[test]
    fn unknown_apply_still_errors() {
        let g = topologies::line(2);
        let logs = vec![vec![], vec![apply(1, wire(0, 9))]];
        assert_eq!(
            verify_trace_checkpointed(&g, &with_empty(&g, &logs), issuer_of),
            Err(TraceError::UnknownUpdate {
                replica: ReplicaId(1),
                update: wire(0, 9)
            })
        );
    }

    #[test]
    fn dropped_apply_of_live_issue_is_a_liveness_violation() {
        // The issue stays live (unsealed), its apply never happened
        // anywhere: stitching must still flag the loss.
        let g = topologies::line(2);
        let logs = vec![vec![issue(0, 0, wire(0, 1))], vec![]];
        let stitched = verify_trace_checkpointed(&g, &with_empty(&g, &logs), issuer_of).unwrap();
        assert_eq!(stitched.verdict.liveness.len(), 1);
        assert_eq!(stitched.verdict.liveness[0].replica, ReplicaId(1));
    }

    #[test]
    fn digest_is_order_sensitive_and_chained() {
        let g = topologies::line(2);
        let a = [issue(0, 0, wire(0, 1)), issue(0, 0, wire(0, 2))];
        let b = [issue(0, 0, wire(0, 2)), issue(0, 0, wire(0, 1))];
        let mut ca = TraceCheckpoint::new(2, g.num_registers());
        let mut cb = TraceCheckpoint::new(2, g.num_registers());
        ca.absorb(&a, issuer_of);
        cb.absorb(&b, issuer_of);
        assert_ne!(ca.digest, cb.digest);
        // Absorbing in two rounds chains to the same digest as one round.
        let mut cc = TraceCheckpoint::new(2, g.num_registers());
        cc.absorb(&a[..1], issuer_of);
        cc.absorb(&a[1..], issuer_of);
        assert_eq!(cc.digest, ca.digest);
        assert_eq!(cc.events, 2);
    }

    /// Generates a random *valid* quiescent execution over `g` using the
    /// oracle itself as ground truth, returning per-replica logs.
    fn random_execution(g: &ShareGraph, steps: usize, seed: u64) -> Vec<Vec<TraceEvent>> {
        // Tiny deterministic LCG so the test does not depend on rand.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move |bound: usize| -> usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound.max(1)
        };
        let mut oracle = Oracle::new(g);
        let mut logs: Vec<Vec<TraceEvent>> = vec![Vec::new(); g.num_replicas()];
        let mut seqs = vec![0u64; g.num_replicas()];
        let mut updates: Vec<(crate::UpdateId, u64)> = Vec::new(); // (oracle id, wire id)
        for _ in 0..steps {
            let mut deliverable: Vec<(ReplicaId, crate::UpdateId, u64)> = Vec::new();
            for &(oid, w) in &updates {
                for i in g.replicas() {
                    if g.stores(i, oracle.register(oid))
                        && !oracle.is_applied(i, oid)
                        && oracle.causal_past(oid).iter().all(|&dep| {
                            !g.stores(i, oracle.register(dep)) || oracle.is_applied(i, dep)
                        })
                    {
                        deliverable.push((i, oid, w));
                    }
                }
            }
            // Bias toward applies so chains build up.
            if !deliverable.is_empty() && next(3) != 0 {
                let (i, oid, w) = deliverable[next(deliverable.len())];
                oracle.on_apply(i, oid).expect("generator preserves safety");
                logs[i.index()].push(TraceEvent::Apply {
                    replica: i,
                    update: w,
                });
            } else {
                let i = ReplicaId(next(g.num_replicas()));
                let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
                if regs.is_empty() {
                    continue;
                }
                let x = regs[next(regs.len())];
                seqs[i.index()] += 1;
                let w = wire(i.index(), seqs[i.index()]);
                let oid = oracle.on_issue(i, x);
                updates.push((oid, w));
                logs[i.index()].push(TraceEvent::Issue {
                    replica: i,
                    register: x,
                    update: w,
                });
            }
        }
        // Drain to quiescence: deliver everything still owed, in causal
        // order, so the trace has no liveness gaps.
        loop {
            let mut advanced = false;
            for &(oid, w) in &updates {
                for i in g.replicas() {
                    if g.stores(i, oracle.register(oid))
                        && !oracle.is_applied(i, oid)
                        && oracle.causal_past(oid).iter().all(|&dep| {
                            !g.stores(i, oracle.register(dep)) || oracle.is_applied(i, dep)
                        })
                    {
                        oracle.on_apply(i, oid).expect("causal delivery");
                        logs[i.index()].push(TraceEvent::Apply {
                            replica: i,
                            update: w,
                        });
                        advanced = true;
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        assert!(oracle.check_liveness().is_empty(), "generator quiesces");
        logs
    }

    /// The headline equivalence property: on randomized valid executions,
    /// the stitched verdict equals full replay for checkpoints placed at
    /// **every** per-replica prefix length (sampled jointly, swept
    /// exhaustively per replica).
    #[test]
    fn checkpointed_verification_equals_full_replay_at_every_prefix() {
        for (g, steps, seed) in [
            (topologies::clique_full(3, 2), 40, 7),
            (topologies::ring(4), 60, 11),
            (topologies::line(3), 30, 23),
        ] {
            let logs = random_execution(&g, steps, seed);
            let full = verify_trace(&g, &logs).unwrap();
            assert!(full.is_consistent(), "generator produced a violation");

            // Exhaustive per-replica sweep: cut one replica's log at every
            // prefix length, others untouched.
            for i in 0..logs.len() {
                for k in 0..=logs[i].len() {
                    let mut cut = vec![0; logs.len()];
                    cut[i] = k;
                    let parts = seal(&g, &logs, &cut);
                    let stitched = verify_trace_checkpointed(&g, &parts, issuer_of)
                        .unwrap_or_else(|e| panic!("replica {i} cut {k}: {e}"));
                    assert!(
                        stitched.is_consistent(),
                        "replica {i} cut {k}: {:?}",
                        stitched.verdict
                    );
                }
            }

            // Joint random cuts.
            let mut state = seed | 1;
            for round in 0..25 {
                let cut: Vec<usize> = logs
                    .iter()
                    .map(|log| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as usize) % (log.len() + 1)
                    })
                    .collect();
                let parts = seal(&g, &logs, &cut);
                let stitched = verify_trace_checkpointed(&g, &parts, issuer_of)
                    .unwrap_or_else(|e| panic!("round {round} cut {cut:?}: {e}"));
                assert!(
                    stitched.is_consistent(),
                    "round {round} cut {cut:?}: {:?}",
                    stitched.verdict
                );
                let sealed: u64 = cut.iter().map(|&k| k as u64).sum();
                assert_eq!(stitched.sealed_events, sealed);
            }
        }
    }

    /// Violations among live events are reported identically with and
    /// without a sealed prefix in front of them.
    #[test]
    fn live_violations_survive_a_sealed_prefix() {
        let g = topologies::clique_full(3, 1);
        // Prefix: u1 fully propagated. Suffix: replica 2 applies u3 (which
        // causally follows u2) before u2 — one safety violation.
        let logs = vec![
            vec![
                issue(0, 0, wire(0, 1)),
                issue(0, 0, wire(0, 2)),
                apply(0, wire(1, 1)),
            ],
            vec![
                apply(1, wire(0, 1)),
                apply(1, wire(0, 2)),
                issue(1, 0, wire(1, 1)),
            ],
            vec![
                apply(2, wire(0, 1)),
                apply(2, wire(1, 1)),
                apply(2, wire(0, 2)),
            ],
        ];
        let full = verify_trace(&g, &logs).unwrap();
        assert_eq!(full.safety.len(), 1);
        // Seal the fully-propagated u1 everywhere (complete cut).
        let parts = seal(&g, &logs, &[1, 1, 1]);
        let stitched = verify_trace_checkpointed(&g, &parts, issuer_of).unwrap();
        assert_eq!(stitched.verdict.safety.len(), 1);
        assert_eq!(stitched.verdict.safety[0].replica, ReplicaId(2));
        assert!(stitched.verdict.liveness.is_empty());
    }

    #[test]
    fn partitions_stitch_independently() {
        let g = topologies::line(2);
        let cp = || TraceCheckpoint::new(2, g.num_registers());
        let mut sealed = cp();
        sealed.absorb(&[issue(0, 0, wire(0, 1))], issuer_of);
        let parts = vec![
            // Partition 0: sealed issue + live straggler apply.
            vec![(sealed, vec![]), (cp(), vec![apply(1, wire(0, 1))])],
            // Partition 1: fully live.
            vec![
                (cp(), vec![issue(0, 0, wire(0, 7))]),
                (cp(), vec![apply(1, wire(0, 7))]),
            ],
        ];
        let verdicts = verify_partitions_checkpointed(&g, &parts, |_, w| issuer_of(w));
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].as_ref().unwrap().is_consistent());
        assert_eq!(verdicts[0].as_ref().unwrap().straggler_applies, 1);
        assert!(verdicts[1].as_ref().unwrap().is_consistent());
        assert_eq!(verdicts[1].as_ref().unwrap().straggler_applies, 0);
    }
}
