//! Online consistent-cut audit: marker-style global snapshots checked
//! for causal-cut closure, without stopping traffic.
//!
//! The post-hoc oracle needs every node's full (or checkpointed) trace
//! and a quiescent cluster. A *consistent-cut* audit is the online
//! complement: a marker token is injected at one node, floods the peer
//! links in channel order (Chandy–Lamport style), and each node records
//! a [`CutSnapshot`] of its per-partition frontiers the moment it first
//! sees the token. The snapshots form a global cut; this module checks
//! that the cut is **causally closed**.
//!
//! # The closure invariant
//!
//! Wire ids are assigned monotonically per issuer, and a causally
//! consistent replica applies each issuer's updates in issue order — so
//! a replica's per-issuer applied frontier is a complete description of
//! which of that issuer's updates it has applied. The cut is closed iff
//! for every partition, every replica `r` in the cut, and every issuer
//! role `j`:
//!
//! ```text
//! applied_r[j] ≤ issued_j          (from j's own snapshot)
//! ```
//!
//! i.e. no replica has applied an update its issuer had not yet issued
//! when the issuer passed the cut line. An update issued *before* the
//! cut and applied *after* it is merely in flight (fine); an update
//! applied *before* the cut whose issue the cut missed would make the
//! "global state" one that never existed — that is what markers keeping
//! their channel position prevents, and what this check detects if the
//! marker discipline (or the protocol) is broken.
//!
//! A cut is only *conclusive* when every role of every observed
//! partition reported a snapshot for the token; a node crash or a
//! severed link mid-audit loses markers, and the verdict is then
//! [`CutVerdict::Incomplete`] — the auditor retries with a fresh token
//! rather than trusting a partial cut.

use std::collections::HashMap;

/// One partition's frontier state inside a node's cut snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCut {
    /// The partition this slice describes.
    pub partition: u32,
    /// The reporting node's replica role within the partition.
    pub role: usize,
    /// Highest wire id this replica has issued itself (0 = none).
    pub issued_high: u64,
    /// Per issuer role: highest wire id applied here (own issues
    /// included), length = the partition's replication factor.
    pub applied: Vec<u64>,
    /// Updates buffered awaiting dependencies at snapshot time.
    pub pending: u64,
}

/// One node's snapshot of every partition it hosts, taken at its first
/// sight of a cut token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutSnapshot {
    /// The reporting node.
    pub node: u64,
    /// The cut token the snapshot belongs to.
    pub token: u64,
    /// Per hosted partition, the frontier state at the cut line.
    pub partitions: Vec<PartitionCut>,
}

/// Verdict of a consistent-cut closure check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutVerdict {
    /// Every observed partition's cut is causally closed.
    Closed {
        /// Distinct partitions covered by the cut.
        partitions: usize,
        /// Individual `applied ≤ issued` comparisons performed.
        checks: u64,
    },
    /// A replica applied an update beyond its issuer's snapshot — the
    /// cut is not a consistent global state.
    Violated {
        /// Partition the violation is in.
        partition: u32,
        /// Role whose applied frontier overran the issuer.
        observer_role: usize,
        /// The issuer role overrun.
        issuer_role: usize,
        /// The observer's applied frontier for the issuer.
        applied: u64,
        /// The issuer's own issued frontier at its snapshot.
        issued: u64,
    },
    /// The cut cannot be judged: a role is missing (marker lost to a
    /// crash or sever), duplicated, or tokens are mixed. Retry with a
    /// fresh token.
    Incomplete {
        /// Human-readable reason.
        reason: String,
    },
}

impl CutVerdict {
    /// True when the cut was conclusively closed.
    pub fn is_closed(&self) -> bool {
        matches!(self, CutVerdict::Closed { .. })
    }

    /// True when the audit must be retried (not a protocol violation).
    pub fn is_incomplete(&self) -> bool {
        matches!(self, CutVerdict::Incomplete { .. })
    }
}

/// Checks a set of per-node snapshots for causal-cut closure.
///
/// Completeness requirement: within each partition that any snapshot
/// mentions, every role `0..replication_factor` (the length of the
/// `applied` vectors) must be reported exactly once, all under the same
/// token. Anything else yields [`CutVerdict::Incomplete`].
pub fn verify_cut_closure(snapshots: &[CutSnapshot]) -> CutVerdict {
    if snapshots.is_empty() {
        return CutVerdict::Incomplete {
            reason: "no snapshots".into(),
        };
    }
    let token = snapshots[0].token;
    if let Some(s) = snapshots.iter().find(|s| s.token != token) {
        return CutVerdict::Incomplete {
            reason: format!(
                "mixed tokens: node {} reported {}, expected {token}",
                s.node, s.token
            ),
        };
    }
    // partition -> role -> (issued_high, applied)
    let mut by_partition: HashMap<u32, HashMap<usize, (u64, &[u64])>> = HashMap::new();
    let mut roles_of: HashMap<u32, usize> = HashMap::new();
    for snap in snapshots {
        for pc in &snap.partitions {
            let roles = roles_of.entry(pc.partition).or_insert(pc.applied.len());
            if *roles != pc.applied.len() || pc.role >= *roles {
                return CutVerdict::Incomplete {
                    reason: format!(
                        "partition {} role {} inconsistent with replication factor {}",
                        pc.partition, pc.role, roles
                    ),
                };
            }
            let slot = by_partition.entry(pc.partition).or_default();
            if slot
                .insert(pc.role, (pc.issued_high, pc.applied.as_slice()))
                .is_some()
            {
                return CutVerdict::Incomplete {
                    reason: format!("partition {} role {} reported twice", pc.partition, pc.role),
                };
            }
        }
    }
    let mut checks = 0u64;
    let mut partitions: Vec<_> = by_partition.iter().collect();
    partitions.sort_by_key(|(p, _)| **p);
    for (&partition, slots) in partitions {
        let roles = roles_of[&partition];
        for role in 0..roles {
            if !slots.contains_key(&role) {
                return CutVerdict::Incomplete {
                    reason: format!("partition {partition} missing role {role}"),
                };
            }
        }
        for (&observer_role, &(_, applied)) in slots.iter() {
            for (issuer_role, &applied_high) in applied.iter().enumerate() {
                if applied_high == 0 {
                    continue;
                }
                let &(issued, _) = &slots[&issuer_role];
                checks += 1;
                if applied_high > issued {
                    return CutVerdict::Violated {
                        partition,
                        observer_role,
                        issuer_role,
                        applied: applied_high,
                        issued,
                    };
                }
            }
        }
    }
    CutVerdict::Closed {
        partitions: by_partition.len(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(node: u64, token: u64, partitions: Vec<PartitionCut>) -> CutSnapshot {
        CutSnapshot {
            node,
            token,
            partitions,
        }
    }

    fn pc(partition: u32, role: usize, issued: u64, applied: Vec<u64>) -> PartitionCut {
        PartitionCut {
            partition,
            role,
            issued_high: issued,
            applied,
            pending: 0,
        }
    }

    /// Wire ids mimic the service's `(node << 40) | seq` layout.
    fn wid(node: u64, seq: u64) -> u64 {
        (node << 40) | seq
    }

    #[test]
    fn closed_cut_passes() {
        let v = verify_cut_closure(&[
            snap(0, 7, vec![pc(0, 0, wid(0, 5), vec![wid(0, 5), wid(1, 3)])]),
            snap(1, 7, vec![pc(0, 1, wid(1, 4), vec![wid(0, 4), wid(1, 4)])]),
        ]);
        assert!(v.is_closed(), "{v:?}");
        match v {
            CutVerdict::Closed { partitions, checks } => {
                assert_eq!(partitions, 1);
                assert_eq!(checks, 4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn applied_beyond_issuer_snapshot_is_a_violation() {
        // Node 1 applied node 0's update seq 6, but node 0's snapshot only
        // issued up to seq 5: the cut caught an effect without its cause.
        let v = verify_cut_closure(&[
            snap(0, 7, vec![pc(0, 0, wid(0, 5), vec![wid(0, 5), 0])]),
            snap(1, 7, vec![pc(0, 1, wid(1, 2), vec![wid(0, 6), wid(1, 2)])]),
        ]);
        match v {
            CutVerdict::Violated {
                partition,
                observer_role,
                issuer_role,
                applied,
                issued,
            } => {
                assert_eq!(partition, 0);
                assert_eq!(observer_role, 1);
                assert_eq!(issuer_role, 0);
                assert_eq!(applied, wid(0, 6));
                assert_eq!(issued, wid(0, 5));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn missing_role_is_inconclusive() {
        let v = verify_cut_closure(&[snap(
            0,
            7,
            vec![pc(0, 0, wid(0, 5), vec![wid(0, 5), wid(1, 3)])],
        )]);
        assert!(v.is_incomplete(), "{v:?}");
    }

    #[test]
    fn duplicate_role_is_inconclusive() {
        let v = verify_cut_closure(&[
            snap(0, 7, vec![pc(0, 0, wid(0, 5), vec![wid(0, 5), 0])]),
            snap(1, 7, vec![pc(0, 0, wid(0, 5), vec![wid(0, 5), 0])]),
        ]);
        assert!(v.is_incomplete(), "{v:?}");
    }

    #[test]
    fn mixed_tokens_are_inconclusive() {
        let v = verify_cut_closure(&[
            snap(0, 7, vec![pc(0, 0, 1, vec![1, 0])]),
            snap(1, 8, vec![pc(0, 1, 1, vec![0, 1])]),
        ]);
        assert!(v.is_incomplete(), "{v:?}");
    }

    #[test]
    fn empty_set_is_inconclusive() {
        assert!(verify_cut_closure(&[]).is_incomplete());
    }

    #[test]
    fn multi_partition_cut_checks_each_partition() {
        let v = verify_cut_closure(&[
            snap(
                0,
                3,
                vec![
                    pc(0, 0, wid(0, 9), vec![wid(0, 9), wid(1, 1)]),
                    pc(1, 1, 0, vec![wid(1, 8), 0]),
                ],
            ),
            snap(
                1,
                3,
                vec![
                    pc(0, 1, wid(1, 1), vec![wid(0, 2), wid(1, 1)]),
                    pc(1, 0, wid(1, 8), vec![wid(1, 8), 0]),
                ],
            ),
        ]);
        assert!(v.is_closed(), "{v:?}");
    }

    #[test]
    fn zero_applied_frontiers_need_no_issuer() {
        // applied == 0 means "never applied anything from that issuer";
        // no comparison is made (and issued 0 is fine).
        let v = verify_cut_closure(&[
            snap(0, 1, vec![pc(0, 0, 0, vec![0, 0])]),
            snap(1, 1, vec![pc(0, 1, 0, vec![0, 0])]),
        ]);
        assert!(v.is_closed(), "{v:?}");
    }
}
