//! A threaded in-process deployment of the protocol.
//!
//! The discrete-event simulator (`prcc-net`) is the primary substrate for
//! experiments because it is deterministic and can realize the paper's
//! adversarial schedules. This crate complements it with *real*
//! concurrency: each replica runs on its own OS thread, updates travel
//! through a pool of delayer threads (so messages between the same pair of
//! replicas can overtake each other — the paper's non-FIFO channels), and
//! the shared oracle checks causal consistency under true parallelism.
//!
//! This shakes out `Send`/`Sync` issues and validates that the protocol
//! logic does not secretly depend on the simulator's cooperative stepping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use prcc_checker::{Oracle, Verdict};
use prcc_clock::Protocol;
use prcc_core::{Replica, Update};
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::VirtualTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

enum Msg<C> {
    Write(RegisterId, u64),
    Update(Update<C>),
    Shutdown,
}

type NodeChannels<C> = (Vec<Sender<Msg<C>>>, Vec<Receiver<Msg<C>>>);

/// A write operation for the threaded cluster: `(replica, register, value)`.
pub type WriteOp = (ReplicaId, RegisterId, u64);

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Oracle verdict at termination.
    pub verdict: Verdict,
    /// Total update messages exchanged.
    pub messages: u64,
    /// Remote applies performed across replicas.
    pub applies: u64,
}

/// Runs `ops` against a threaded deployment of `protocol` and verifies
/// causal consistency.
///
/// Each replica is an OS thread; updates are routed through `delayers`
/// threads that sleep up to `max_delay_us` microseconds before forwarding,
/// so per-link FIFO order is deliberately broken. The function returns once
/// every message has been processed (quiescence via an in-flight counter).
///
/// # Panics
///
/// Panics if an op addresses a replica/register pair the share graph does
/// not permit, or if a worker thread panics.
pub fn run_threaded<P>(
    protocol: Arc<P>,
    ops: Vec<WriteOp>,
    delayers: usize,
    max_delay_us: u64,
    seed: u64,
) -> ThreadedReport
where
    P: Protocol + 'static,
{
    let g = protocol.share_graph().clone();
    let n = g.num_replicas();
    let oracle = Arc::new(Mutex::new(Oracle::new(&g)));
    let violations = Arc::new(Mutex::new(Vec::new()));
    let in_flight = Arc::new(AtomicI64::new(0));
    let messages = Arc::new(AtomicI64::new(0));
    let applies = Arc::new(AtomicI64::new(0));

    // Replica channels.
    let (replica_tx, replica_rx): NodeChannels<P::Clock> = (0..n).map(|_| unbounded()).unzip();

    // Delayer pool: (dst, update) pairs forwarded after a random nap.
    let (delay_tx, delay_rx) = unbounded::<(usize, Update<P::Clock>)>();
    let mut handles = Vec::new();
    for d in 0..delayers.max(1) {
        let rx = delay_rx.clone();
        let txs = replica_tx.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (d as u64) << 32);
        handles.push(thread::spawn(move || {
            while let Ok((dst, update)) = rx.recv() {
                if max_delay_us > 0 {
                    let nap = rng.gen_range(0..=max_delay_us);
                    thread::sleep(Duration::from_micros(nap));
                }
                // The receiving replica decrements in_flight.
                let _ = txs[dst].send(Msg::Update(update));
            }
        }));
    }
    drop(delay_rx);

    // Replica threads.
    for (idx, rx) in replica_rx.into_iter().enumerate() {
        let protocol = Arc::clone(&protocol);
        let oracle = Arc::clone(&oracle);
        let violations = Arc::clone(&violations);
        let in_flight = Arc::clone(&in_flight);
        let messages = Arc::clone(&messages);
        let applies = Arc::clone(&applies);
        let delay_tx = delay_tx.clone();
        let g = g.clone();
        handles.push(thread::spawn(move || {
            let me = ReplicaId(idx);
            let mut replica: Replica<P> = Replica::new(&protocol, me);
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Shutdown => break,
                    Msg::Write(x, v) => {
                        let clock = replica
                            .write(&protocol, x, v)
                            .expect("valid scripted write");
                        let id = oracle.lock().on_issue(me, x);
                        let update = Update {
                            id,
                            issuer: me,
                            register: x,
                            value: v,
                            clock,
                            issued_at: VirtualTime::ZERO,
                            received_at: VirtualTime::ZERO,
                        };
                        for k in protocol.recipients(me, x) {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            messages.fetch_add(1, Ordering::SeqCst);
                            delay_tx
                                .send((k.index(), update.clone()))
                                .expect("delayer alive");
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Msg::Update(u) => {
                        replica.receive(u, VirtualTime::ZERO);
                        for done in replica.drain(&protocol) {
                            if g.stores(me, done.register) {
                                if let Err(v) = oracle.lock().on_apply(me, done.id) {
                                    violations.lock().push(v);
                                }
                            }
                            applies.fetch_add(1, Ordering::SeqCst);
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }
    drop(delay_tx);

    // Inject the script.
    for (i, x, v) in ops {
        in_flight.fetch_add(1, Ordering::SeqCst);
        replica_tx[i.index()]
            .send(Msg::Write(x, v))
            .expect("replica alive");
    }

    // Quiescence: all injected and derived messages processed.
    while in_flight.load(Ordering::SeqCst) != 0 {
        thread::sleep(Duration::from_micros(200));
    }
    for tx in &replica_tx {
        let _ = tx.send(Msg::Shutdown);
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let mut verdict = Verdict {
        safety: violations.lock().clone(),
        liveness: Vec::new(),
    };
    verdict.liveness = oracle.lock().check_liveness();
    ThreadedReport {
        verdict,
        messages: messages.load(Ordering::SeqCst) as u64,
        applies: applies.load(Ordering::SeqCst) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::EdgeProtocol;
    use prcc_graph::topologies;

    fn script(g: &prcc_graph::ShareGraph, writes: usize, seed: u64) -> Vec<WriteOp> {
        use rand::seq::SliceRandom;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::new();
        let replicas: Vec<ReplicaId> = g.replicas().collect();
        for v in 0..writes {
            let i = *replicas.choose(&mut rng).unwrap();
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            if regs.is_empty() {
                continue;
            }
            out.push((i, *regs.choose(&mut rng).unwrap(), v as u64));
        }
        out
    }

    #[test]
    fn threaded_ring_is_causally_consistent() {
        let g = topologies::ring(5);
        let protocol = Arc::new(EdgeProtocol::new(g.clone()));
        let report = run_threaded(protocol, script(&g, 120, 7), 4, 300, 42);
        assert!(
            report.verdict.is_consistent(),
            "threaded run violated consistency: {:?}",
            report.verdict
        );
        assert!(report.applies > 0);
        assert!(report.messages > 0);
    }

    #[test]
    fn threaded_figure5_many_seeds() {
        let g = topologies::figure5();
        for seed in 0..3 {
            let protocol = Arc::new(EdgeProtocol::new(g.clone()));
            let report = run_threaded(protocol, script(&g, 80, seed), 3, 200, seed);
            assert!(report.verdict.is_consistent(), "seed {seed}");
        }
    }

    #[test]
    fn zero_delay_still_works() {
        let g = topologies::line(3);
        let protocol = Arc::new(EdgeProtocol::new(g.clone()));
        let report = run_threaded(protocol, script(&g, 40, 1), 2, 0, 1);
        assert!(report.verdict.is_consistent());
    }
}
