//! The simulated client-server system.

use crate::config::CsConfig;
use prcc_checker::{Oracle, SafetyViolation, UpdateId};
use prcc_clock::{ClockState, EdgeClock};
use prcc_graph::{AugmentedShareGraph, ClientId, RegisterId, ReplicaId};
use prcc_net::{DeliveryPolicy, Network, VirtualTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by client operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsError {
    /// The client may not access this replica (`i ∉ R_c`).
    NotInReplicaSet {
        /// The client issuing the operation.
        client: ClientId,
        /// The replica it tried to reach.
        replica: ReplicaId,
    },
    /// The replica does not store the register.
    NotStored {
        /// The replica the operation was addressed to.
        replica: ReplicaId,
        /// The register it does not store.
        register: RegisterId,
    },
    /// The operation cannot complete: the network is quiescent but the
    /// request predicate still fails (would wait forever).
    Stalled,
}

impl fmt::Display for CsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsError::NotInReplicaSet { client, replica } => {
                write!(f, "client {client} may not access replica {replica}")
            }
            CsError::NotStored { replica, register } => {
                write!(f, "replica {replica} does not store {register}")
            }
            CsError::Stalled => write!(
                f,
                "operation stalled: predicate unsatisfiable at quiescence"
            ),
        }
    }
}

impl std::error::Error for CsError {}

/// Verdict for a client-server run: replica-level safety/liveness plus
/// client-access safety (Definition 26's second clause).
#[derive(Debug, Clone, Default)]
pub struct CsVerdict {
    /// Replica-level safety violations.
    pub safety: Vec<SafetyViolation>,
    /// Liveness violations at quiescence.
    pub liveness: Vec<prcc_checker::LivenessViolation>,
    /// Client accesses served before the replica caught up:
    /// `(client, replica, missing update)`.
    pub access: Vec<(ClientId, ReplicaId, UpdateId)>,
}

impl CsVerdict {
    /// True when no violation of any kind was observed.
    pub fn is_consistent(&self) -> bool {
        self.safety.is_empty() && self.liveness.is_empty() && self.access.is_empty()
    }
}

/// Run statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsStats {
    /// Writes served.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Inter-replica update messages.
    pub update_messages: u64,
    /// Request/response messages between clients and replicas.
    pub rpc_messages: u64,
    /// Total bytes (updates + RPCs, varint-encoded clocks).
    pub bytes: u64,
    /// Requests that had to buffer at the replica before `J1`/`J2` held.
    pub buffered_requests: u64,
}

#[derive(Debug, Clone)]
struct CsUpdate {
    id: UpdateId,
    issuer: ReplicaId,
    register: RegisterId,
    value: u64,
    clock: EdgeClock,
}

#[derive(Debug, Clone)]
enum Msg {
    Request {
        op: u64,
        client: ClientId,
        register: RegisterId,
        value: Option<u64>,
        mu: EdgeClock,
    },
    Response {
        op: u64,
        value: Option<u64>,
        tau: EdgeClock,
    },
    Update(CsUpdate),
}

#[derive(Debug)]
struct ReplicaState {
    store: Vec<Option<u64>>,
    tau: EdgeClock,
    pending_updates: Vec<CsUpdate>,
    pending_requests: Vec<(u64, ClientId, RegisterId, Option<u64>, EdgeClock, bool)>,
}

/// The full client-server deployment: replicas and clients on one simulated
/// network, driven by synchronous client operations.
pub struct CsSystem {
    cfg: CsConfig,
    replicas: Vec<ReplicaState>,
    clients: Vec<EdgeClock>,
    net: Network<Msg>,
    oracle: Oracle,
    verdict: CsVerdict,
    stats: CsStats,
    next_op: u64,
    /// Completed op results waiting for pickup.
    completed: Vec<(u64, Option<u64>)>,
}

impl CsSystem {
    /// Builds the system for an augmented share graph.
    pub fn new(aug: AugmentedShareGraph, policy: Box<dyn DeliveryPolicy>) -> Self {
        let cfg = CsConfig::new(aug);
        let g = cfg.augmented().share_graph().clone();
        let num_r = g.num_replicas();
        let num_c = cfg.augmented().num_clients();
        let replicas = g
            .replicas()
            .map(|i| ReplicaState {
                store: vec![None; g.num_registers()],
                tau: cfg.replica_clock(i),
                pending_updates: Vec::new(),
                pending_requests: Vec::new(),
            })
            .collect();
        let clients = cfg
            .augmented()
            .clients()
            .map(|c| cfg.client_clock(c))
            .collect();
        let oracle = Oracle::with_clients(&g, num_c);
        CsSystem {
            cfg,
            replicas,
            clients,
            net: Network::new(num_r + num_c, policy),
            oracle,
            verdict: CsVerdict::default(),
            stats: CsStats::default(),
            next_op: 0,
            completed: Vec::new(),
        }
    }

    fn client_node(&self, c: ClientId) -> usize {
        self.cfg.augmented().share_graph().num_replicas() + c.index()
    }

    fn validate(&self, c: ClientId, i: ReplicaId, x: RegisterId) -> Result<(), CsError> {
        if !self.cfg.augmented().replicas_of(c).contains(&i) {
            return Err(CsError::NotInReplicaSet {
                client: c,
                replica: i,
            });
        }
        if !self.cfg.augmented().share_graph().stores(i, x) {
            return Err(CsError::NotStored {
                replica: i,
                register: x,
            });
        }
        Ok(())
    }

    /// Synchronous client write through replica `i` (Appendix E client
    /// prototype): sends `write(x, v, c, µ_c)`, pumps the network until the
    /// acknowledgement arrives, merges the returned timestamp.
    ///
    /// # Errors
    ///
    /// Validation errors, or [`CsError::Stalled`] if the request can never
    /// be served.
    pub fn write(
        &mut self,
        c: ClientId,
        i: ReplicaId,
        x: RegisterId,
        v: u64,
    ) -> Result<(), CsError> {
        self.validate(c, i, x)?;
        let op = self.submit(c, i, x, Some(v));
        self.await_op(op).map(|_| ())
    }

    /// Synchronous client read through replica `i`.
    ///
    /// # Errors
    ///
    /// Validation errors, or [`CsError::Stalled`].
    pub fn read(
        &mut self,
        c: ClientId,
        i: ReplicaId,
        x: RegisterId,
    ) -> Result<Option<u64>, CsError> {
        self.validate(c, i, x)?;
        let op = self.submit(c, i, x, None);
        self.await_op(op)
    }

    fn submit(&mut self, c: ClientId, i: ReplicaId, x: RegisterId, v: Option<u64>) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        let mu = self.clients[c.index()].clone();
        let bytes = 16 + mu.encoded_len();
        self.stats.rpc_messages += 1;
        self.stats.bytes += bytes as u64;
        let node = self.client_node(c);
        self.net.send(
            node,
            i.index(),
            bytes,
            Msg::Request {
                op,
                client: c,
                register: x,
                value: v,
                mu,
            },
        );
        op
    }

    fn await_op(&mut self, op: u64) -> Result<Option<u64>, CsError> {
        loop {
            if let Some(pos) = self.completed.iter().position(|&(o, _)| o == op) {
                return Ok(self.completed.swap_remove(pos).1);
            }
            if !self.step() {
                return Err(CsError::Stalled);
            }
        }
    }

    /// Delivers one message and processes consequences. Returns false at
    /// quiescence.
    pub fn step(&mut self) -> bool {
        let Some(delivery) = self.net.deliver_next() else {
            return false;
        };
        let num_r = self.cfg.augmented().share_graph().num_replicas();
        match delivery.msg {
            Msg::Update(u) => {
                let i = ReplicaId(delivery.dst);
                self.replicas[delivery.dst].pending_updates.push(u);
                self.process_replica(i);
            }
            Msg::Request {
                op,
                client,
                register,
                value,
                mu,
            } => {
                let i = ReplicaId(delivery.dst);
                self.replicas[delivery.dst]
                    .pending_requests
                    .push((op, client, register, value, mu, false));
                self.process_replica(i);
            }
            Msg::Response { op, value, tau } => {
                let c = delivery.dst - num_r;
                // merge1/merge2: fold the replica's timestamp into µ_c.
                self.clients[c].merge_from(&tau);
                self.completed.push((op, value));
            }
        }
        true
    }

    /// Runs the network dry (serving whatever becomes serviceable).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Fixpoint at one replica: apply deliverable updates (J3) and serve
    /// ready requests (J1/J2) until neither makes progress.
    fn process_replica(&mut self, i: ReplicaId) {
        loop {
            let mut progressed = false;
            // Updates first (they can unblock requests).
            if let Some(pos) = {
                let st = &self.replicas[i.index()];
                st.pending_updates
                    .iter()
                    .position(|u| self.cfg.update_ready(i, &st.tau, u.issuer, &u.clock))
            } {
                let u = self.replicas[i.index()].pending_updates.swap_remove(pos);
                self.replicas[i.index()].store[u.register.index()] = Some(u.value);
                self.replicas[i.index()].tau.merge_from(&u.clock);
                if let Err(v) = self.oracle.on_apply(i, u.id) {
                    self.verdict.safety.push(v);
                }
                progressed = true;
            }
            if let Some(pos) = {
                let st = &self.replicas[i.index()];
                st.pending_requests
                    .iter()
                    .position(|(_, _, _, _, mu, _)| self.cfg.request_ready(i, &st.tau, mu))
            } {
                let (op, client, register, value, mu, was_buffered) =
                    self.replicas[i.index()].pending_requests.swap_remove(pos);
                if was_buffered {
                    self.stats.buffered_requests += 1;
                }
                self.serve(i, op, client, register, value, &mu);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        // Mark the remaining requests as having buffered at least once.
        for r in &mut self.replicas[i.index()].pending_requests {
            r.5 = true;
        }
    }

    fn serve(
        &mut self,
        i: ReplicaId,
        op: u64,
        client: ClientId,
        register: RegisterId,
        value: Option<u64>,
        mu: &EdgeClock,
    ) {
        // Client-access safety check (before the oracle absorbs the access).
        if let Some(missing) = self.oracle.client_access_violation(client.index(), i) {
            self.verdict.access.push((client, i, missing));
        }
        let response_value;
        match value {
            None => {
                // Read: respond with the local copy and τ_i.
                self.oracle.on_client_access(client.index(), i);
                response_value = self.replicas[i.index()].store[register.index()];
                self.stats.reads += 1;
            }
            Some(v) => {
                // Write: apply locally, advance with µ, propagate updates.
                self.replicas[i.index()].store[register.index()] = Some(v);
                let mut tau = self.replicas[i.index()].tau.clone();
                self.cfg.advance(i, &mut tau, mu, register);
                self.replicas[i.index()].tau = tau.clone();
                let id = self.oracle.on_client_issue(client.index(), i, register);
                let update = CsUpdate {
                    id,
                    issuer: i,
                    register,
                    value: v,
                    clock: tau,
                };
                let g = self.cfg.augmented().share_graph();
                for k in g.recipients(i, register) {
                    let bytes = 16 + update.clock.encoded_len();
                    self.stats.update_messages += 1;
                    self.stats.bytes += bytes as u64;
                    self.net
                        .send(i.index(), k.index(), bytes, Msg::Update(update.clone()));
                }
                response_value = Some(v);
                self.stats.writes += 1;
            }
        }
        let tau = self.replicas[i.index()].tau.clone();
        let bytes = 16 + tau.encoded_len();
        self.stats.rpc_messages += 1;
        self.stats.bytes += bytes as u64;
        let node = self.client_node(client);
        self.net.send(
            i.index(),
            node,
            bytes,
            Msg::Response {
                op,
                value: response_value,
                tau,
            },
        );
    }

    /// The final verdict (includes a liveness check at the current state).
    pub fn verdict(&self) -> CsVerdict {
        let mut v = self.verdict.clone();
        v.liveness = self.oracle.check_liveness();
        v
    }

    /// Run statistics.
    pub fn stats(&self) -> &CsStats {
        &self.stats
    }

    /// The timestamp configuration (augmented graphs, clock shapes).
    pub fn config(&self) -> &CsConfig {
        &self.cfg
    }

    /// Direct peek at a replica's local copy (testing).
    pub fn peek(&self, i: ReplicaId, x: RegisterId) -> Option<u64> {
        self.replicas[i.index()].store[x.index()]
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.net.now()
    }
}

impl fmt::Debug for CsSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsSystem")
            .field("replicas", &self.replicas.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;
    use prcc_net::{FixedDelay, UniformDelay};

    fn bridge_system(seed: u64) -> CsSystem {
        // Line 0–1–2–3 with a client spanning the two ends and two local
        // clients.
        let g = topologies::line(4);
        let aug = AugmentedShareGraph::new(
            g,
            vec![
                vec![ReplicaId(0), ReplicaId(3)],
                vec![ReplicaId(0), ReplicaId(1)],
                vec![ReplicaId(2), ReplicaId(3)],
            ],
        )
        .unwrap();
        CsSystem::new(aug, Box::new(UniformDelay::new(seed, 1, 20)))
    }

    #[test]
    fn read_your_own_writes_through_one_replica() {
        let mut s = bridge_system(1);
        s.write(ClientId(1), ReplicaId(0), RegisterId(0), 5)
            .unwrap();
        assert_eq!(
            s.read(ClientId(1), ReplicaId(0), RegisterId(0)).unwrap(),
            Some(5)
        );
        s.run_to_quiescence();
        assert!(s.verdict().is_consistent());
    }

    #[test]
    fn session_guarantee_across_replicas() {
        // Client 0 writes register 0 through replica 0 (shared with 1);
        // client 1 reads it at replica 1 after propagation; client 0's
        // session via replica 3 blocks until replica 3 has caught up with
        // everything client 0 saw.
        let mut s = bridge_system(2);
        s.write(ClientId(0), ReplicaId(0), RegisterId(0), 9)
            .unwrap();
        // Access the far end: J1 requires replica 3 to be at least as
        // current as the client's µ — which here has only replica-0-side
        // knowledge; a read of register 2 at 3 is served once consistent.
        let _ = s.read(ClientId(0), ReplicaId(3), RegisterId(2)).unwrap();
        s.run_to_quiescence();
        let v = s.verdict();
        assert!(v.is_consistent(), "access violations: {:?}", v.access);
    }

    #[test]
    fn validation_errors() {
        let mut s = bridge_system(3);
        assert_eq!(
            s.write(ClientId(1), ReplicaId(3), RegisterId(2), 1),
            Err(CsError::NotInReplicaSet {
                client: ClientId(1),
                replica: ReplicaId(3)
            })
        );
        assert_eq!(
            s.read(ClientId(1), ReplicaId(0), RegisterId(2)),
            Err(CsError::NotStored {
                replica: ReplicaId(0),
                register: RegisterId(2)
            })
        );
    }

    #[test]
    fn mixed_workload_is_consistent() {
        let mut s = bridge_system(4);
        for round in 0..20u64 {
            s.write(ClientId(1), ReplicaId(0), RegisterId(0), round)
                .unwrap();
            s.write(ClientId(2), ReplicaId(2), RegisterId(2), round)
                .unwrap();
            if round % 3 == 0 {
                let _ = s.read(ClientId(0), ReplicaId(0), RegisterId(0)).unwrap();
                let _ = s.read(ClientId(0), ReplicaId(3), RegisterId(2)).unwrap();
            }
        }
        s.run_to_quiescence();
        assert!(s.verdict().is_consistent());
        let st = s.stats();
        assert_eq!(st.writes, 40);
        assert!(st.reads >= 14);
        assert!(st.update_messages > 0);
        assert!(st.bytes > 0);
    }

    #[test]
    fn fifo_network_still_buffers_nothing_wrongly() {
        let g = topologies::ring(4);
        let aug = AugmentedShareGraph::new(g, vec![vec![ReplicaId(0), ReplicaId(2)]]).unwrap();
        let mut s = CsSystem::new(aug, Box::new(FixedDelay(3)));
        s.write(ClientId(0), ReplicaId(0), RegisterId(0), 1)
            .unwrap();
        s.write(ClientId(0), ReplicaId(2), RegisterId(2), 2)
            .unwrap();
        s.run_to_quiescence();
        assert!(s.verdict().is_consistent());
        assert_eq!(s.peek(ReplicaId(1), RegisterId(0)), Some(1));
    }
}
