//! The client-server architecture (Figure 1b; Section 6, Appendix E).
//!
//! Clients access arbitrary subsets of replicas (`R_c`), propagating causal
//! dependencies between replicas that share no registers. Compared to the
//! peer-to-peer system:
//!
//! * Clients keep their own timestamps `µ_c`, indexed by
//!   `∪_{i ∈ R_c} Ê_i`, and attach them to requests.
//! * Replicas buffer client requests until `J1`/`J2` hold (the replica has
//!   caught up with everything the client has seen) and time-stamp with the
//!   *augmented* timestamp graphs `Ê_i` of Definition 28, whose extra edges
//!   come from client-induced augmented `(i, e_jk)`-loops.
//! * `advance` additionally folds the client's timestamp into the replica's
//!   (`max(τ[e], µ[e])` on non-incremented entries).
//!
//! The [`CsSystem`] simulates the whole architecture over `prcc-net` and
//! verifies the `↪′`-based consistency of Definition 26 with the oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod system;

pub use config::CsConfig;
pub use system::{CsError, CsStats, CsSystem, CsVerdict};
