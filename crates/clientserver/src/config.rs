//! Timestamp configuration for the client-server algorithm (Appendix E.5).

use prcc_clock::EdgeClock;
use prcc_graph::{AugmentedShareGraph, ClientId, Edge, RegisterId, ReplicaId, TimestampGraph};

/// Precomputed timestamp structure: augmented timestamp graphs `Ê_i` per
/// replica and the client index sets `∪_{i ∈ R_c} Ê_i`, plus the
/// `advance` / `merge` / predicate functions of Appendix E.5.
#[derive(Debug)]
pub struct CsConfig {
    aug: AugmentedShareGraph,
    replica_graphs: Vec<TimestampGraph>,
    replica_zero: Vec<EdgeClock>,
    client_zero: Vec<EdgeClock>,
}

impl CsConfig {
    /// Computes the configuration for an augmented share graph.
    pub fn new(aug: AugmentedShareGraph) -> Self {
        let replica_graphs = aug.augmented_timestamp_graphs();
        let replica_zero: Vec<EdgeClock> = replica_graphs
            .iter()
            .map(|t| EdgeClock::zero_over(t.edges()))
            .collect();
        let client_zero = aug
            .clients()
            .map(|c| EdgeClock::zero_over(aug.client_timestamp_edges(c)))
            .collect();
        CsConfig {
            aug,
            replica_graphs,
            replica_zero,
            client_zero,
        }
    }

    /// The augmented share graph.
    pub fn augmented(&self) -> &AugmentedShareGraph {
        &self.aug
    }

    /// The augmented timestamp graph `Ê_i`.
    pub fn replica_graph(&self, i: ReplicaId) -> &TimestampGraph {
        &self.replica_graphs[i.index()]
    }

    /// The zero timestamp of replica `i`.
    pub fn replica_clock(&self, i: ReplicaId) -> EdgeClock {
        self.replica_zero[i.index()].clone()
    }

    /// The zero timestamp `µ_c` of client `c`.
    pub fn client_clock(&self, c: ClientId) -> EdgeClock {
        self.client_zero[c.index()].clone()
    }

    /// `advance(i, τ, c, µ, x, v)`: increment edges `e_ik` with
    /// `x ∈ X_ik`; take `max(τ[e], µ[e])` on every other entry.
    pub fn advance(&self, i: ReplicaId, tau: &mut EdgeClock, mu: &EdgeClock, x: RegisterId) {
        // Fold the client's knowledge in first…
        tau.merge_from(mu);
        // …then increment the write's own edges (which cannot also need the
        // µ-max: µ can never exceed i's own-edge counters, as only i bumps
        // them and every client value was copied from some replica's τ).
        let g = self.aug.share_graph();
        for &k in g.neighbors(i) {
            if g.shared(i, k).contains(x) {
                tau.bump_edge(Edge::new(i, k));
            }
        }
    }

    /// Predicates `J1 = J2`: the replica has applied everything the client
    /// has seen on `i`'s incoming tracked edges
    /// (`τ[e_ji] ≥ µ[e_ji] ∀ e_ji ∈ Ê_i`).
    pub fn request_ready(&self, i: ReplicaId, tau: &EdgeClock, mu: &EdgeClock) -> bool {
        tau.dominates_where(mu, |e| e.to == i)
    }

    /// Predicate `J3`: as the peer-to-peer `J` —
    /// `τ[e_ki] = T[e_ki] − 1` and `τ[e_ji] ≥ T[e_ji]` for every other
    /// common incoming edge.
    pub fn update_ready(&self, i: ReplicaId, tau: &EdgeClock, k: ReplicaId, t: &EdgeClock) -> bool {
        tau.common_entries(t).all(|(e, mine, theirs)| {
            if e.to != i {
                true
            } else if e.from == k {
                mine == theirs.wrapping_sub(1)
            } else {
                mine >= theirs
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::ClockState;
    use prcc_graph::topologies;

    fn line_with_bridge_client() -> CsConfig {
        let g = topologies::line(4);
        let aug = AugmentedShareGraph::new(g, vec![vec![ReplicaId(0), ReplicaId(3)]]).unwrap();
        CsConfig::new(aug)
    }

    #[test]
    fn client_clock_spans_its_replicas() {
        let cfg = line_with_bridge_client();
        let mu = cfg.client_clock(ClientId(0));
        let t0 = cfg.replica_graph(ReplicaId(0));
        let t3 = cfg.replica_graph(ReplicaId(3));
        assert_eq!(
            mu.entries(),
            t0.edges()
                .chain(t3.edges())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }

    #[test]
    fn advance_bumps_own_edges_and_folds_client() {
        let cfg = line_with_bridge_client();
        let i = ReplicaId(0);
        let mut tau = cfg.replica_clock(i);
        let mut mu = cfg.client_clock(ClientId(0));
        // Pretend the client saw an update on edge 3→2 (tracked by replica
        // 3's graph, hence in µ).
        let e32 = Edge::new(ReplicaId(3), ReplicaId(2));
        if mu.get(e32).is_some() {
            mu.bump_edge(e32);
        }
        cfg.advance(i, &mut tau, &mu, RegisterId(0));
        assert_eq!(tau.get(Edge::new(ReplicaId(0), ReplicaId(1))), Some(1));
        if tau.get(e32).is_some() {
            assert_eq!(tau.get(e32), Some(1), "client knowledge folded in");
        }
    }

    #[test]
    fn request_ready_blocks_until_caught_up() {
        let cfg = line_with_bridge_client();
        let i = ReplicaId(0);
        let tau = cfg.replica_clock(i);
        let mut mu = cfg.client_clock(ClientId(0));
        assert!(cfg.request_ready(i, &tau, &mu));
        // Client has seen one update on 1→0; fresh replica clock hasn't.
        assert!(mu.bump_edge(Edge::new(ReplicaId(1), ReplicaId(0))));
        assert!(!cfg.request_ready(i, &tau, &mu));
        // Knowledge about edges not incoming at i does not block.
        let mut mu2 = cfg.client_clock(ClientId(0));
        if mu2.get(Edge::new(ReplicaId(2), ReplicaId(3))).is_some() {
            mu2.bump_edge(Edge::new(ReplicaId(2), ReplicaId(3)));
            assert!(cfg.request_ready(i, &tau, &mu2));
        }
    }

    #[test]
    fn update_ready_matches_p2p_shape() {
        let cfg = line_with_bridge_client();
        let i = ReplicaId(1);
        let tau = cfg.replica_clock(i);
        let mut sender = cfg.replica_clock(ReplicaId(0));
        let mu = cfg.client_clock(ClientId(0));
        cfg.advance(ReplicaId(0), &mut sender, &mu, RegisterId(0));
        assert!(cfg.update_ready(i, &tau, ReplicaId(0), &sender));
        let mut sender2 = sender.clone();
        cfg.advance(ReplicaId(0), &mut sender2, &mu, RegisterId(0));
        assert!(!cfg.update_ready(i, &tau, ReplicaId(0), &sender2));
    }
}
