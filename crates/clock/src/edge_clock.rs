//! The paper's algorithm (Section 3.3): edge-indexed vector timestamps.

use crate::encoding;
use crate::traits::{ClockState, Protocol};
use prcc_graph::{Edge, RegisterId, ReplicaId, ShareGraph, TimestampGraph};
use std::fmt;
use std::sync::Arc;

/// An edge-indexed vector timestamp `τ_i`: one counter per edge of the
/// owning replica's timestamp graph `E_i`.
///
/// The key set is immutable, shared (`Arc`) configuration; only the counter
/// vector is per-instance, so attaching a timestamp to an update message is
/// a cheap clone.
#[derive(Clone, PartialEq, Eq)]
pub struct EdgeClock {
    /// Sorted edge keys (ascending [`Edge`] order).
    keys: Arc<[Edge]>,
    counters: Vec<u64>,
}

impl EdgeClock {
    /// Creates the all-zero clock over a sorted key set.
    fn new(keys: Arc<[Edge]>) -> Self {
        let counters = vec![0; keys.len()];
        EdgeClock { keys, counters }
    }

    /// Creates an all-zero clock over an arbitrary edge set (sorted and
    /// deduplicated). Used by the client-server extension, whose clients
    /// keep clocks over `∪_{i ∈ R_c} Ê_i`.
    pub fn zero_over<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        let mut v: Vec<Edge> = edges.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        EdgeClock::new(v.into())
    }

    /// Increments the counter of `e` if tracked; returns whether it was.
    pub fn bump_edge(&mut self, e: Edge) -> bool {
        match self.keys.binary_search(&e) {
            Ok(idx) => {
                self.counters[idx] += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Pointwise maximum over the common key set (`T[e] := max(τ[e], T[e])`
    /// for `e ∈ E_self ∩ E_other` — the shape shared by the paper's `merge`,
    /// `merge1/2/3` functions).
    pub fn merge_from(&mut self, other: &EdgeClock) {
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.keys.len() && b < other.keys.len() {
            match self.keys[a].cmp(&other.keys[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    self.counters[a] = self.counters[a].max(other.counters[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
    }

    /// True if `self[e] ≥ other[e]` for every common key selected by
    /// `filter` (the shape of predicates `J1`/`J2`: `τ[e_ji] ≥ µ[e_ji]`).
    pub fn dominates_where<F: Fn(Edge) -> bool>(&self, other: &EdgeClock, filter: F) -> bool {
        self.common_entries(other)
            .all(|(e, mine, theirs)| !filter(e) || mine >= theirs)
    }

    /// Iterates `(edge, self counter, other counter)` over the common keys.
    pub fn common_entries<'a>(
        &'a self,
        other: &'a EdgeClock,
    ) -> impl Iterator<Item = (Edge, u64, u64)> + 'a {
        CommonEntries {
            a: self,
            b: other,
            ia: 0,
            ib: 0,
        }
    }

    /// The counter for edge `e`, or `None` if the edge is not tracked.
    pub fn get(&self, e: Edge) -> Option<u64> {
        self.keys
            .binary_search(&e)
            .ok()
            .map(|idx| self.counters[idx])
    }

    /// The tracked edges, ascending.
    pub fn edges(&self) -> &[Edge] {
        &self.keys
    }

    /// Raw counters, parallel to [`EdgeClock::edges`].
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Iterates `(edge, counter)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Edge, u64)> + '_ {
        self.keys.iter().copied().zip(self.counters.iter().copied())
    }

    /// Sum of all counters (used by tests as a cheap progress measure).
    pub fn total(&self) -> u64 {
        self.counters.iter().sum()
    }

    fn bump(&mut self, idx: usize) {
        self.counters[idx] += 1;
    }
}

struct CommonEntries<'a> {
    a: &'a EdgeClock,
    b: &'a EdgeClock,
    ia: usize,
    ib: usize,
}

impl Iterator for CommonEntries<'_> {
    type Item = (Edge, u64, u64);

    fn next(&mut self) -> Option<(Edge, u64, u64)> {
        while self.ia < self.a.keys.len() && self.ib < self.b.keys.len() {
            match self.a.keys[self.ia].cmp(&self.b.keys[self.ib]) {
                std::cmp::Ordering::Less => self.ia += 1,
                std::cmp::Ordering::Greater => self.ib += 1,
                std::cmp::Ordering::Equal => {
                    let out = (
                        self.a.keys[self.ia],
                        self.a.counters[self.ia],
                        self.b.counters[self.ib],
                    );
                    self.ia += 1;
                    self.ib += 1;
                    return Some(out);
                }
            }
        }
        None
    }
}

impl fmt::Debug for EdgeClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|(e, c)| (e.to_string(), c)))
            .finish()
    }
}

impl ClockState for EdgeClock {
    fn entries(&self) -> usize {
        self.counters.len()
    }

    fn encoded_len(&self) -> usize {
        encoding::counters_len(&self.counters)
    }
}

impl crate::wire::WireClock for EdgeClock {
    fn counter_values(&self) -> &[u64] {
        &self.counters
    }

    fn load_counters(&mut self, counters: &[u64]) -> bool {
        if counters.len() != self.counters.len() {
            return false;
        }
        self.counters.copy_from_slice(counters);
        true
    }
}

/// The paper's causal-consistency protocol (Section 3.3), parameterized by
/// the per-replica edge sets it tracks.
///
/// [`EdgeProtocol::new`] uses the exact timestamp graphs `G_i`
/// (Definition 5) — the necessary-and-sufficient choice. Baselines that
/// deliberately track other sets (all share edges, Hélary–Milani hoops,
/// bounded loops) construct the same protocol via
/// [`EdgeProtocol::with_edge_sets`]; everything else (advance/merge/`J`) is
/// identical, which makes over-/under-tracking comparisons apples-to-apples.
pub struct EdgeProtocol {
    g: ShareGraph,
    name: String,
    /// Sorted edge keys per replica.
    keys: Vec<Arc<[Edge]>>,
    /// `bump[i][x]` — indices (into replica `i`'s keys) of edges `e_ik` with
    /// `x ∈ X_ik`, precomputed for `advance`.
    bump: Vec<Vec<Vec<usize>>>,
}

impl EdgeProtocol {
    /// Builds the protocol with the exact timestamp graphs of Definition 5.
    pub fn new(g: ShareGraph) -> Self {
        let graphs = TimestampGraph::compute_all(&g);
        Self::with_edge_sets(g, graphs, "edge-tsg")
    }

    /// Builds the protocol from caller-provided edge sets (one
    /// [`TimestampGraph`] per replica, in replica order).
    ///
    /// # Panics
    ///
    /// Panics if `graphs.len() != g.num_replicas()` or a graph's owner
    /// doesn't match its position.
    pub fn with_edge_sets(
        g: ShareGraph,
        graphs: Vec<TimestampGraph>,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(graphs.len(), g.num_replicas(), "one edge set per replica");
        let mut keys = Vec::with_capacity(graphs.len());
        let mut bump = Vec::with_capacity(graphs.len());
        for (i, tsg) in graphs.iter().enumerate() {
            assert_eq!(tsg.replica(), ReplicaId(i), "edge set out of order");
            let ks: Arc<[Edge]> = tsg.edges().collect::<Vec<_>>().into();
            let mut per_reg = vec![Vec::new(); g.num_registers()];
            for (idx, e) in ks.iter().enumerate() {
                if e.from == ReplicaId(i) {
                    for x in g.shared_on(*e).iter() {
                        per_reg[x.index()].push(idx);
                    }
                }
            }
            keys.push(ks);
            bump.push(per_reg);
        }
        EdgeProtocol {
            g,
            name: name.into(),
            keys,
            bump,
        }
    }

    /// The edge key set of replica `i`.
    pub fn keys_of(&self, i: ReplicaId) -> &[Edge] {
        &self.keys[i.index()]
    }
}

impl fmt::Debug for EdgeProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeProtocol")
            .field("name", &self.name)
            .field("replicas", &self.g.num_replicas())
            .finish()
    }
}

impl Protocol for EdgeProtocol {
    type Clock = EdgeClock;

    fn name(&self) -> &str {
        &self.name
    }

    fn share_graph(&self) -> &ShareGraph {
        &self.g
    }

    fn new_clock(&self, i: ReplicaId) -> EdgeClock {
        EdgeClock::new(Arc::clone(&self.keys[i.index()]))
    }

    fn advance(&self, i: ReplicaId, local: &mut EdgeClock, x: RegisterId) {
        // T_i[e_jk] := τ_i[e_jk] + 1 if j = i and x ∈ X_ik, unchanged
        // otherwise.
        for &idx in &self.bump[i.index()][x.index()] {
            local.bump(idx);
        }
    }

    fn deliverable(
        &self,
        i: ReplicaId,
        local: &EdgeClock,
        k: ReplicaId,
        attached: &EdgeClock,
        _x: RegisterId,
    ) -> bool {
        // J(i, τ_i, k, T) ⇔ τ_i[e_ki] = T[e_ki] − 1
        //                  ∧ τ_i[e_ji] ≥ T[e_ji] ∀ e_ji ∈ E_i ∩ E_k, j ≠ k.
        // Merge-join the two sorted key sets; only edges into i matter.
        let (mut a, mut b) = (0usize, 0usize);
        let (ka, kb) = (&local.keys, &attached.keys);
        while a < ka.len() && b < kb.len() {
            match ka[a].cmp(&kb[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let e = ka[a];
                    if e.to == i {
                        if e.from == k {
                            if local.counters[a] != attached.counters[b].wrapping_sub(1) {
                                return false;
                            }
                        } else if local.counters[a] < attached.counters[b] {
                            return false;
                        }
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
        true
    }

    fn merge(&self, _i: ReplicaId, local: &mut EdgeClock, _k: ReplicaId, attached: &EdgeClock) {
        // T_i[e] := max(τ_i[e], T[e]) for e ∈ E_i ∩ E_k, τ_i[e] otherwise.
        local.merge_from(attached);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    fn edge(from: usize, to: usize) -> Edge {
        Edge::new(ReplicaId(from), ReplicaId(to))
    }

    #[test]
    fn advance_bumps_exactly_matching_outgoing_edges() {
        // Figure 5 fixture: replica 0 stores {a, y, w}; writing y (reg 5)
        // must bump e_01 and e_03 (both neighbors store y); writing w
        // (reg 7) only e_03; writing a (reg 0, unshared) nothing.
        let g = topologies::figure5();
        let p = EdgeProtocol::new(g);
        let mut c = p.new_clock(ReplicaId(0));
        p.advance(ReplicaId(0), &mut c, RegisterId(5));
        assert_eq!(c.get(edge(0, 1)), Some(1));
        assert_eq!(c.get(edge(0, 3)), Some(1));
        assert_eq!(c.get(edge(1, 0)), Some(0));
        p.advance(ReplicaId(0), &mut c, RegisterId(7));
        assert_eq!(c.get(edge(0, 1)), Some(1));
        assert_eq!(c.get(edge(0, 3)), Some(2));
        let before = c.clone();
        p.advance(ReplicaId(0), &mut c, RegisterId(0));
        assert_eq!(c, before, "unshared register bumps nothing");
    }

    #[test]
    fn predicate_enforces_per_edge_fifo() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut sender = p.new_clock(ReplicaId(0));
        let receiver = p.new_clock(ReplicaId(1));
        // First update deliverable, second (without the first) not.
        p.advance(ReplicaId(0), &mut sender, RegisterId(0));
        let t1 = sender.clone();
        p.advance(ReplicaId(0), &mut sender, RegisterId(0));
        let t2 = sender.clone();
        assert!(p.deliverable(ReplicaId(1), &receiver, ReplicaId(0), &t1, RegisterId(0)));
        assert!(!p.deliverable(ReplicaId(1), &receiver, ReplicaId(0), &t2, RegisterId(0)));
        // After merging t1, t2 becomes deliverable.
        let mut receiver = receiver;
        p.merge(ReplicaId(1), &mut receiver, ReplicaId(0), &t1);
        assert!(p.deliverable(ReplicaId(1), &receiver, ReplicaId(0), &t2, RegisterId(0)));
    }

    #[test]
    fn predicate_waits_for_transitive_dependency() {
        // Triangle with one shared register everywhere: 0 writes, 1 applies
        // then writes; 2 must not apply 1's update before 0's.
        let g = topologies::clique_full(3, 1);
        let p = EdgeProtocol::new(g);
        let x = RegisterId(0);
        let mut c0 = p.new_clock(ReplicaId(0));
        let mut c1 = p.new_clock(ReplicaId(1));
        let c2 = p.new_clock(ReplicaId(2));
        p.advance(ReplicaId(0), &mut c0, x);
        let t0 = c0.clone();
        // Replica 1 applies u0, then issues u1.
        assert!(p.deliverable(ReplicaId(1), &c1, ReplicaId(0), &t0, x));
        p.merge(ReplicaId(1), &mut c1, ReplicaId(0), &t0);
        p.advance(ReplicaId(1), &mut c1, x);
        let t1 = c1.clone();
        // u1 alone is not deliverable at 2 (u0 ↪ u1 missing).
        assert!(!p.deliverable(ReplicaId(2), &c2, ReplicaId(1), &t1, x));
        let mut c2m = c2.clone();
        p.merge(ReplicaId(2), &mut c2m, ReplicaId(0), &t0);
        assert!(p.deliverable(ReplicaId(2), &c2m, ReplicaId(1), &t1, x));
    }

    #[test]
    fn merge_is_idempotent_and_monotone() {
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        let mut a = p.new_clock(ReplicaId(0));
        let mut b = p.new_clock(ReplicaId(1));
        p.advance(ReplicaId(0), &mut a, RegisterId(0));
        p.advance(ReplicaId(1), &mut b, RegisterId(1));
        let mut merged = a.clone();
        p.merge(ReplicaId(0), &mut merged, ReplicaId(1), &b);
        let once = merged.clone();
        p.merge(ReplicaId(0), &mut merged, ReplicaId(1), &b);
        assert_eq!(merged, once, "idempotent");
        for (e, c) in a.iter() {
            assert!(once.get(e).unwrap() >= c, "monotone on {e}");
        }
    }

    #[test]
    fn clocks_of_different_replicas_have_different_keys() {
        let g = topologies::figure5();
        let p = EdgeProtocol::new(g);
        let c0 = p.new_clock(ReplicaId(0));
        let c2 = p.new_clock(ReplicaId(2));
        assert_ne!(c0.edges(), c2.edges());
        assert_eq!(c0.entries(), 8);
    }

    #[test]
    fn encoded_len_grows_with_counters() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut c = p.new_clock(ReplicaId(0));
        let small = c.encoded_len();
        for _ in 0..1000 {
            p.advance(ReplicaId(0), &mut c, RegisterId(0));
        }
        assert!(c.encoded_len() > small);
        assert_eq!(
            crate::encoding::decode_counters(&crate::encoding::encode_counters(c.counters()))
                .unwrap(),
            c.counters()
        );
    }

    #[test]
    fn with_edge_sets_accepts_custom_tracking() {
        // Tracking all share edges everywhere (a legal over-approximation).
        let g = topologies::figure5();
        let graphs: Vec<TimestampGraph> = g
            .replicas()
            .map(|i| TimestampGraph::from_edges(i, g.directed_edges()))
            .collect();
        let p = EdgeProtocol::with_edge_sets(g.clone(), graphs, "all-edges");
        assert_eq!(p.name(), "all-edges");
        let c = p.new_clock(ReplicaId(0));
        assert_eq!(c.entries(), g.num_directed_edges());
    }

    #[test]
    #[should_panic(expected = "one edge set per replica")]
    fn with_edge_sets_validates_length() {
        let g = topologies::line(2);
        let _ = EdgeProtocol::with_edge_sets(g, vec![], "broken");
    }

    #[test]
    fn zero_over_sorts_and_dedups() {
        let c = EdgeClock::zero_over([edge(2, 1), edge(0, 1), edge(2, 1)]);
        assert_eq!(c.edges(), &[edge(0, 1), edge(2, 1)]);
        assert_eq!(c.entries(), 2);
    }

    #[test]
    fn bump_and_common_entries() {
        let mut a = EdgeClock::zero_over([edge(0, 1), edge(1, 0), edge(2, 1)]);
        let mut b = EdgeClock::zero_over([edge(1, 0), edge(2, 1), edge(3, 1)]);
        assert!(a.bump_edge(edge(1, 0)));
        assert!(!a.bump_edge(edge(9, 8)));
        assert!(b.bump_edge(edge(2, 1)));
        let common: Vec<_> = a.common_entries(&b).collect();
        assert_eq!(common, vec![(edge(1, 0), 1, 0), (edge(2, 1), 0, 1)]);
        assert!(!a.dominates_where(&b, |_| true));
        assert!(a.dominates_where(&b, |e| e == edge(1, 0)));
        a.merge_from(&b);
        assert_eq!(a.get(edge(2, 1)), Some(1));
        assert_eq!(a.get(edge(1, 0)), Some(1));
    }

    #[test]
    fn debug_formats_are_informative() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        assert!(format!("{p:?}").contains("EdgeProtocol"));
        let c = p.new_clock(ReplicaId(0));
        assert!(format!("{c:?}").contains("e(0→1)"));
    }
}
