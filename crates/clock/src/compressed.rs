//! Register-level compressed timestamps (Appendix D).
//!
//! The paper observes that edge counters are linear combinations of
//! per-register update counts, and suggests counting "the number of updates
//! on x, y and z separately" instead of per edge. This module implements
//! that refinement as a live protocol: replica `i` keeps one counter per
//! `(source replica j, register r)` pair with `r ∈ ∪_{e_jk ∈ E_i} X_jk`.
//!
//! The per-register counters determine every edge counter exactly
//! (`τ[e_jk] = Σ_{r ∈ X_jk} c_{j,r}` whenever counts are consistent), and
//! the delivery predicate refines `J` register-by-register:
//!
//! * for the written register `x` from sender `k`:
//!   `c_i[(k, x)] = T[(k, x)] − 1` (per-register FIFO), and
//! * for every other commonly tracked `(j, r)` with `r ∈ X_i`:
//!   `c_i[(j, r)] ≥ T[(j, r)]`.
//!
//! This is at least as strong as the edge predicate (so safety is
//! preserved), and the counter count `Σ_j |∪_k X_jk|` is never larger than
//! `Σ_j Σ_k |… |`… it can beat or lose to raw `|E_i|` depending on overlap —
//! experiment E10 reports both against the rank lower bound `I(E_i, j)`.

use crate::encoding;
use crate::traits::{ClockState, Protocol};
use prcc_graph::{RegSet, RegisterId, ReplicaId, ShareGraph, TimestampGraph};
use std::fmt;
use std::sync::Arc;

/// A `(source replica, register)` indexed timestamp.
#[derive(Clone, PartialEq, Eq)]
pub struct CompressedClock {
    /// Sorted `(source, register)` keys.
    keys: Arc<[(ReplicaId, RegisterId)]>,
    counters: Vec<u64>,
}

impl CompressedClock {
    fn new(keys: Arc<[(ReplicaId, RegisterId)]>) -> Self {
        let counters = vec![0; keys.len()];
        CompressedClock { keys, counters }
    }

    /// Counter for `(source, register)`, or `None` if untracked.
    pub fn get(&self, j: ReplicaId, r: RegisterId) -> Option<u64> {
        self.keys
            .binary_search(&(j, r))
            .ok()
            .map(|idx| self.counters[idx])
    }

    /// Reconstructs the edge counter `τ[e_jk] = Σ_{r ∈ X_jk} c_{j,r}` from
    /// the per-register counters (exact when counts are consistent; see the
    /// module docs).
    pub fn edge_counter(&self, g: &ShareGraph, e: prcc_graph::Edge) -> u64 {
        g.shared_on(e)
            .iter()
            .filter_map(|r| self.get(e.from, r))
            .sum()
    }

    /// Iterates `((source, register), counter)`.
    pub fn iter(&self) -> impl Iterator<Item = ((ReplicaId, RegisterId), u64)> + '_ {
        self.keys.iter().copied().zip(self.counters.iter().copied())
    }
}

impl fmt::Debug for CompressedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|((j, r), c)| (format!("({j},{r})"), c)))
            .finish()
    }
}

impl ClockState for CompressedClock {
    fn entries(&self) -> usize {
        self.counters.len()
    }

    fn encoded_len(&self) -> usize {
        encoding::counters_len(&self.counters)
    }
}

impl crate::wire::WireClock for CompressedClock {
    fn counter_values(&self) -> &[u64] {
        &self.counters
    }

    fn load_counters(&mut self, counters: &[u64]) -> bool {
        if counters.len() != self.counters.len() {
            return false;
        }
        self.counters.copy_from_slice(counters);
        true
    }
}

/// The register-level protocol of Appendix D, tracking the same edges as
/// [`crate::EdgeProtocol`] but with per-register granularity.
pub struct CompressedProtocol {
    g: ShareGraph,
    name: String,
    keys: Vec<Arc<[(ReplicaId, RegisterId)]>>,
    /// Per replica: is register r stored locally? (copied from g for fast
    /// predicate checks)
    stores: Vec<RegSet>,
}

impl CompressedProtocol {
    /// Builds the protocol from the exact timestamp graphs.
    pub fn new(g: ShareGraph) -> Self {
        let graphs = TimestampGraph::compute_all(&g);
        Self::with_edge_sets(g, graphs, "edge-tsg-compressed")
    }

    /// Builds from custom edge sets (mirrors
    /// [`crate::EdgeProtocol::with_edge_sets`]).
    ///
    /// # Panics
    ///
    /// Panics if the edge-set vector doesn't match the replica count.
    pub fn with_edge_sets(
        g: ShareGraph,
        graphs: Vec<TimestampGraph>,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(graphs.len(), g.num_replicas(), "one edge set per replica");
        let mut keys = Vec::with_capacity(graphs.len());
        for tsg in &graphs {
            // Keys: (j, r) for r ∈ ∪_{e_jk ∈ E_i} X_jk, sorted.
            let mut ks: Vec<(ReplicaId, RegisterId)> = Vec::new();
            for j in g.replicas() {
                let mut union = RegSet::new(g.num_registers());
                for e in tsg.outgoing_of(j) {
                    union.union_with(g.shared_on(e));
                }
                for r in union.iter() {
                    ks.push((j, r));
                }
            }
            ks.sort_unstable();
            keys.push(ks.into());
        }
        let stores = g.replicas().map(|i| g.registers_of(i).clone()).collect();
        CompressedProtocol {
            g,
            name: name.into(),
            keys,
            stores,
        }
    }
}

impl fmt::Debug for CompressedProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompressedProtocol")
            .field("name", &self.name)
            .field("replicas", &self.g.num_replicas())
            .finish()
    }
}

impl Protocol for CompressedProtocol {
    type Clock = CompressedClock;

    fn name(&self) -> &str {
        &self.name
    }

    fn share_graph(&self) -> &ShareGraph {
        &self.g
    }

    fn new_clock(&self, i: ReplicaId) -> CompressedClock {
        CompressedClock::new(Arc::clone(&self.keys[i.index()]))
    }

    fn advance(&self, i: ReplicaId, local: &mut CompressedClock, x: RegisterId) {
        if let Ok(idx) = local.keys.binary_search(&(i, x)) {
            local.counters[idx] += 1;
        }
    }

    fn deliverable(
        &self,
        i: ReplicaId,
        local: &CompressedClock,
        k: ReplicaId,
        attached: &CompressedClock,
        x: RegisterId,
    ) -> bool {
        let stores_i = &self.stores[i.index()];
        let (mut a, mut b) = (0usize, 0usize);
        let (ka, kb) = (&local.keys, &attached.keys);
        while a < ka.len() && b < kb.len() {
            match ka[a].cmp(&kb[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let (j, r) = ka[a];
                    if stores_i.contains(r) {
                        if (j, r) == (k, x) {
                            if local.counters[a] != attached.counters[b].wrapping_sub(1) {
                                return false;
                            }
                        } else if local.counters[a] < attached.counters[b] {
                            return false;
                        }
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
        true
    }

    fn merge(
        &self,
        _i: ReplicaId,
        local: &mut CompressedClock,
        _k: ReplicaId,
        attached: &CompressedClock,
    ) {
        let (mut a, mut b) = (0usize, 0usize);
        while a < local.keys.len() && b < attached.keys.len() {
            match local.keys[a].cmp(&attached.keys[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    local.counters[a] = local.counters[a].max(attached.counters[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeProtocol;
    use prcc_graph::{topologies, Edge};

    #[test]
    fn edge_counters_reconstruct_from_registers() {
        let g = topologies::figure5();
        let ep = EdgeProtocol::new(g.clone());
        let cp = CompressedProtocol::new(g.clone());
        let i = ReplicaId(0);
        let mut ec = ep.new_clock(i);
        let mut cc = cp.new_clock(i);
        for x in [5u32, 7, 5, 0] {
            ep.advance(i, &mut ec, RegisterId(x));
            cp.advance(i, &mut cc, RegisterId(x));
        }
        for (e, c) in ec.iter() {
            if e.from == i {
                assert_eq!(cc.edge_counter(&g, e), c, "edge {e}");
            }
        }
    }

    #[test]
    fn predicate_agrees_with_edge_protocol_on_simple_chain() {
        let g = topologies::clique_full(3, 2);
        let ep = EdgeProtocol::new(g.clone());
        let cp = CompressedProtocol::new(g);
        let x = RegisterId(0);
        // 0 writes x twice; 1 must apply in order under both protocols.
        let mut e0 = ep.new_clock(ReplicaId(0));
        let mut c0 = cp.new_clock(ReplicaId(0));
        ep.advance(ReplicaId(0), &mut e0, x);
        cp.advance(ReplicaId(0), &mut c0, x);
        let (te1, tc1) = (e0.clone(), c0.clone());
        ep.advance(ReplicaId(0), &mut e0, x);
        cp.advance(ReplicaId(0), &mut c0, x);
        let (te2, tc2) = (e0.clone(), c0.clone());
        let el = ep.new_clock(ReplicaId(1));
        let cl = cp.new_clock(ReplicaId(1));
        assert_eq!(
            ep.deliverable(ReplicaId(1), &el, ReplicaId(0), &te1, x),
            cp.deliverable(ReplicaId(1), &cl, ReplicaId(0), &tc1, x)
        );
        assert_eq!(
            ep.deliverable(ReplicaId(1), &el, ReplicaId(0), &te2, x),
            cp.deliverable(ReplicaId(1), &cl, ReplicaId(0), &tc2, x)
        );
    }

    #[test]
    fn per_register_fifo_is_finer_than_per_edge() {
        // Replica 0 shares {x, y} with replica 1. Edge protocol: one edge
        // counter. Compressed: separate x/y counters; an x-update and a
        // y-update still apply in issue order (both protocols), but the
        // compressed clock records which registers were involved.
        let g = prcc_graph::ShareGraphBuilder::new()
            .replica_raw([0, 1])
            .replica_raw([0, 1])
            .build()
            .unwrap();
        let cp = CompressedProtocol::new(g);
        let mut c0 = cp.new_clock(ReplicaId(0));
        cp.advance(ReplicaId(0), &mut c0, RegisterId(0));
        let t_x = c0.clone();
        cp.advance(ReplicaId(0), &mut c0, RegisterId(1));
        let t_y = c0.clone();
        let local = cp.new_clock(ReplicaId(1));
        assert!(cp.deliverable(ReplicaId(1), &local, ReplicaId(0), &t_x, RegisterId(0)));
        // The y-update depends on the x-update having been applied.
        assert!(!cp.deliverable(ReplicaId(1), &local, ReplicaId(0), &t_y, RegisterId(1)));
        let mut local = local;
        cp.merge(ReplicaId(1), &mut local, ReplicaId(0), &t_x);
        assert!(cp.deliverable(ReplicaId(1), &local, ReplicaId(0), &t_y, RegisterId(1)));
    }

    #[test]
    fn entry_counts_match_register_level_analysis() {
        let g = topologies::figure5();
        let cp = CompressedProtocol::new(g.clone());
        for tsg in TimestampGraph::compute_all(&g) {
            let i = tsg.replica();
            let report = prcc_graph::analysis::compression_report(&g, &tsg);
            assert_eq!(
                cp.new_clock(i).entries(),
                report.register_entries,
                "replica {i}"
            );
        }
    }

    #[test]
    fn full_replication_register_level_can_exceed_edges() {
        // Clique of 3 replicas, 5 registers each: register-level tracking
        // needs R·K = 15 counters vs R(R−1) = 6 raw edges — compression is
        // not always a win, as E10 reports.
        let g = topologies::clique_full(3, 5);
        let cp = CompressedProtocol::new(g.clone());
        let ep = EdgeProtocol::new(g);
        assert!(cp.new_clock(ReplicaId(0)).entries() > ep.new_clock(ReplicaId(0)).entries());
    }

    #[test]
    fn untracked_register_write_is_noop() {
        let g = topologies::line(3);
        let cp = CompressedProtocol::new(g);
        let mut c = cp.new_clock(ReplicaId(0));
        // Register 1 is shared by replicas 1 and 2 — replica 0 doesn't store
        // it; advancing must not panic or change anything.
        let before = c.clone();
        cp.advance(ReplicaId(0), &mut c, RegisterId(1));
        assert_eq!(c, before);
    }

    #[test]
    fn edge_counter_for_untracked_edge_is_zero() {
        let g = topologies::line(3);
        let cp = CompressedProtocol::new(g.clone());
        let c = cp.new_clock(ReplicaId(0));
        assert_eq!(c.edge_counter(&g, Edge::new(ReplicaId(1), ReplicaId(2))), 0);
    }
}
