//! LEB128 varint encoding for timestamp counters.
//!
//! Experiments report metadata overhead in bytes, so timestamps encode their
//! counters compactly the way a production wire format would. Index sets are
//! static configuration shared by both endpoints and are not transmitted.

/// Number of bytes the LEB128 encoding of `v` occupies.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Appends the LEB128 encoding of `v` to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `buf`, returning the value and
/// the number of bytes consumed.
///
/// Returns `None` on truncated or over-long (> 10 byte) input.
pub fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (n, &byte) in buf.iter().enumerate().take(10) {
        v |= u64::from(byte & 0x7f) << (7 * n);
        if byte & 0x80 == 0 {
            return Some((v, n + 1));
        }
    }
    None
}

/// Reads a LEB128 varint at `buf[*at..]`, advancing `at` — the cursor
/// shape every hand-rolled codec in the workspace uses (wire frames, WAL
/// records, snapshots), with truncation mapped to
/// [`std::io::ErrorKind::InvalidData`].
///
/// # Errors
///
/// `InvalidData` when `at` is out of range or the varint is truncated or
/// over-long.
pub fn read_varint_at(buf: &[u8], at: &mut usize) -> std::io::Result<u64> {
    let invalid =
        |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let rest = buf.get(*at..).ok_or_else(|| invalid("truncated payload"))?;
    let (v, used) = read_varint(rest).ok_or_else(|| invalid("truncated varint"))?;
    *at += used;
    Ok(v)
}

/// Encodes a counter slice: varint count followed by varint counters.
pub fn encode_counters(counters: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(counters.len() + 1);
    write_varint(&mut out, counters.len() as u64);
    for &c in counters {
        write_varint(&mut out, c);
    }
    out
}

/// Decodes a counter vector produced by [`encode_counters`].
pub fn decode_counters(buf: &[u8]) -> Option<Vec<u64>> {
    let (n, mut off) = read_varint(buf)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (v, used) = read_varint(&buf[off..])?;
        out.push(v);
        off += used;
    }
    if off == buf.len() {
        Some(out)
    } else {
        None
    }
}

/// Total encoded size of a counter slice, without allocating.
pub fn counters_len(counters: &[u64]) -> usize {
    varint_len(counters.len() as u64) + counters.iter().map(|&c| varint_len(c)).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(16_383), 2);
        assert_eq!(varint_len(16_384), 3);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn round_trip_single() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let (got, used) = read_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn round_trip_counters() {
        let counters = vec![0, 5, 1_000_000, 3, u64::MAX];
        let buf = encode_counters(&counters);
        assert_eq!(buf.len(), counters_len(&counters));
        assert_eq!(decode_counters(&buf).unwrap(), counters);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let buf = encode_counters(&[1, 2, 3]);
        assert!(decode_counters(&buf[..buf.len() - 1]).is_none());
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_counters(&long).is_none());
    }

    #[test]
    fn read_rejects_overlong() {
        let buf = vec![0x80u8; 11];
        assert!(read_varint(&buf).is_none());
    }
}
