//! Timestamps for replica-centric causal consistency.
//!
//! This crate implements the metadata layer of Xiang & Vaidya (PODC 2019):
//!
//! * [`EdgeClock`] / [`EdgeProtocol`] — the paper's algorithm (Section 3.3):
//!   per-replica vector timestamps indexed by the edges of the replica's
//!   timestamp graph `G_i`, with the `advance` / `merge` functions and
//!   delivery predicate `J` exactly as specified.
//! * [`VectorClock`] / [`VectorProtocol`] — traditional replica-indexed
//!   vector timestamps (Lazy Replication style), the full-replication
//!   baseline of Section 4's discussion. Correct under partial replication
//!   only when metadata is broadcast to every replica (the dummy-register
//!   emulation of Appendix D), which is how the baseline wires it.
//! * [`CompressedClock`] / [`CompressedProtocol`] — the register-level
//!   refinement sketched in Appendix D ("count the number of updates on x,
//!   y and z separately"): one counter per (source replica, register)
//!   instead of per edge.
//! * [`Protocol`] — the trait a generic replica is parameterized by, so the
//!   core system and every baseline share one implementation.
//!
//! Timestamps carry only counters on the wire; the index sets (`E_i`,
//! register universes) are static configuration known to both endpoints, as
//! in the paper's model where the share graph is static.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod edge_clock;
pub mod encoding;
mod traits;
mod vector_clock;
pub mod wire;

pub use compressed::{CompressedClock, CompressedProtocol};
pub use edge_clock::{EdgeClock, EdgeProtocol};
pub use traits::{ClockState, Protocol};
pub use vector_clock::{VectorClock, VectorProtocol};
pub use wire::WireClock;
