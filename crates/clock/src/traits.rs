//! The [`Protocol`] abstraction: everything a causal-consistency algorithm
//! conforming to the paper's prototype (Section 2.1) must provide.

use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use std::fmt;

/// Per-replica timestamp state carried in update messages.
pub trait ClockState: Clone + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Number of scalar counters in the timestamp.
    fn entries(&self) -> usize;

    /// Wire size of the timestamp in bytes (varint-encoded counters; index
    /// sets are static configuration and not transmitted).
    fn encoded_len(&self) -> usize;
}

/// A causal-consistency protocol conforming to the replica prototype of
/// Section 2.1: a timestamp structure plus `advance`, `merge` and the
/// delivery predicate `J`.
///
/// The protocol object holds all static per-system configuration (share
/// graph, timestamp graphs); [`ClockState`] values hold only the mutable
/// counters, so cloning a timestamp into an update message is cheap.
pub trait Protocol: fmt::Debug + Send + Sync {
    /// The timestamp representation.
    type Clock: ClockState;

    /// Short human-readable protocol name (used in experiment tables).
    fn name(&self) -> &str;

    /// The share graph this protocol instance is configured for.
    fn share_graph(&self) -> &ShareGraph;

    /// The initial (all-zero) timestamp of replica `i`.
    fn new_clock(&self, i: ReplicaId) -> Self::Clock;

    /// Step 2(ii) of the prototype: update `local` for a write by `i` to
    /// register `x` (the paper's `advance(i, τ_i, x, v)`; values don't
    /// affect timestamps).
    fn advance(&self, i: ReplicaId, local: &mut Self::Clock, x: RegisterId);

    /// The predicate `J(i, τ_i, k, τ_k)` of step 4: true when an update
    /// issued by `k` on register `x` with attached timestamp `attached` may
    /// be applied at `i` whose current timestamp is `local`.
    fn deliverable(
        &self,
        i: ReplicaId,
        local: &Self::Clock,
        k: ReplicaId,
        attached: &Self::Clock,
        x: RegisterId,
    ) -> bool;

    /// Step 4(ii): merge the attached timestamp into the local one after
    /// applying the update (the paper's `merge(i, τ_i, k, τ_k)`).
    fn merge(&self, i: ReplicaId, local: &mut Self::Clock, k: ReplicaId, attached: &Self::Clock);

    /// The replicas an update by `i` to `x` must be sent to (step 2(iii)).
    ///
    /// Defaults to the other holders of `x`. Baselines that emulate full
    /// replication via dummy registers (Appendix D) override this to
    /// broadcast metadata more widely.
    fn recipients(&self, i: ReplicaId, x: RegisterId) -> Vec<ReplicaId> {
        self.share_graph().recipients(i, x)
    }

    /// Whether replica `k` stores the *value* of `x` (as opposed to only
    /// receiving metadata for a dummy copy).
    fn stores_value(&self, k: ReplicaId, x: RegisterId) -> bool {
        self.share_graph().stores(k, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeProtocol;
    use prcc_graph::topologies;

    #[test]
    fn default_recipients_are_other_holders() {
        let g = topologies::figure5();
        let p = EdgeProtocol::new(g.clone());
        // y (register 5) is stored by replicas 0, 1, 3.
        let r = p.recipients(ReplicaId(0), RegisterId(5));
        assert_eq!(r, vec![ReplicaId(1), ReplicaId(3)]);
        assert!(p.stores_value(ReplicaId(3), RegisterId(5)));
        assert!(!p.stores_value(ReplicaId(2), RegisterId(5)));
    }
}
