//! Traditional replica-indexed vector timestamps (Lazy Replication style).

use crate::encoding;
use crate::traits::{ClockState, Protocol};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use std::fmt;

/// A plain vector clock of length `R`: entry `j` counts updates issued by
/// replica `j`.
#[derive(Clone, PartialEq, Eq)]
pub struct VectorClock {
    counters: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock for `r` replicas.
    pub fn zero(r: usize) -> Self {
        VectorClock {
            counters: vec![0; r],
        }
    }

    /// The counter of replica `j`.
    pub fn get(&self, j: ReplicaId) -> u64 {
        self.counters[j.index()]
    }

    /// Raw counters, indexed by replica.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.counters)
    }
}

impl ClockState for VectorClock {
    fn entries(&self) -> usize {
        self.counters.len()
    }

    fn encoded_len(&self) -> usize {
        encoding::counters_len(&self.counters)
    }
}

impl crate::wire::WireClock for VectorClock {
    fn counter_values(&self) -> &[u64] {
        &self.counters
    }

    fn load_counters(&mut self, counters: &[u64]) -> bool {
        if counters.len() != self.counters.len() {
            return false;
        }
        self.counters.copy_from_slice(counters);
        true
    }
}

/// The full-replication-emulation baseline (Appendix D): traditional vector
/// timestamps of length `R`, with *metadata broadcast to every replica*.
///
/// Under partial replication a replica-indexed vector is sound only if every
/// replica observes (the metadata of) every update — the paper's "dummy copy
/// of every register at every replica" construction. Consequently
/// [`Protocol::recipients`] returns all other replicas; replicas that don't
/// store the register apply only the metadata (checked via
/// [`Protocol::stores_value`]).
///
/// Trade-off demonstrated by experiment E11: `R` counters (often fewer than
/// `|E_i|`) but `R − 1` messages per update instead of `|C(x)| − 1`, plus
/// false dependencies.
pub struct VectorProtocol {
    g: ShareGraph,
}

impl VectorProtocol {
    /// Builds the baseline over a share graph.
    pub fn new(g: ShareGraph) -> Self {
        VectorProtocol { g }
    }
}

impl fmt::Debug for VectorProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorProtocol")
            .field("replicas", &self.g.num_replicas())
            .finish()
    }
}

impl Protocol for VectorProtocol {
    type Clock = VectorClock;

    fn name(&self) -> &str {
        "full-replication-vc"
    }

    fn share_graph(&self) -> &ShareGraph {
        &self.g
    }

    fn new_clock(&self, _i: ReplicaId) -> VectorClock {
        VectorClock::zero(self.g.num_replicas())
    }

    fn advance(&self, i: ReplicaId, local: &mut VectorClock, _x: RegisterId) {
        local.counters[i.index()] += 1;
    }

    fn deliverable(
        &self,
        _i: ReplicaId,
        local: &VectorClock,
        k: ReplicaId,
        attached: &VectorClock,
        _x: RegisterId,
    ) -> bool {
        // Standard causal-broadcast delivery condition.
        attached.counters[k.index()] == local.counters[k.index()] + 1
            && attached
                .counters
                .iter()
                .zip(&local.counters)
                .enumerate()
                .all(|(j, (t, l))| j == k.index() || t <= l)
    }

    fn merge(&self, _i: ReplicaId, local: &mut VectorClock, _k: ReplicaId, attached: &VectorClock) {
        for (l, t) in local.counters.iter_mut().zip(&attached.counters) {
            *l = (*l).max(*t);
        }
    }

    fn recipients(&self, i: ReplicaId, _x: RegisterId) -> Vec<ReplicaId> {
        // Dummy-register emulation: metadata goes everywhere.
        self.g.replicas().filter(|&k| k != i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    #[test]
    fn broadcast_recipients() {
        let g = topologies::figure5();
        let p = VectorProtocol::new(g);
        let r = p.recipients(ReplicaId(1), RegisterId(4));
        assert_eq!(r.len(), 3, "metadata broadcast to all others");
        // Value is stored only at true holders.
        assert!(p.stores_value(ReplicaId(2), RegisterId(4)));
        assert!(!p.stores_value(ReplicaId(0), RegisterId(4)));
    }

    #[test]
    fn delivery_condition_is_standard_causal_broadcast() {
        let g = topologies::clique_full(3, 1);
        let p = VectorProtocol::new(g);
        let x = RegisterId(0);
        let mut c0 = p.new_clock(ReplicaId(0));
        let mut c1 = p.new_clock(ReplicaId(1));
        let c2 = p.new_clock(ReplicaId(2));
        p.advance(ReplicaId(0), &mut c0, x);
        let t0 = c0.clone();
        p.merge(ReplicaId(1), &mut c1, ReplicaId(0), &t0);
        p.advance(ReplicaId(1), &mut c1, x);
        let t1 = c1.clone();
        assert!(!p.deliverable(ReplicaId(2), &c2, ReplicaId(1), &t1, x));
        let mut c2 = c2;
        assert!(p.deliverable(ReplicaId(2), &c2, ReplicaId(0), &t0, x));
        p.merge(ReplicaId(2), &mut c2, ReplicaId(0), &t0);
        assert!(p.deliverable(ReplicaId(2), &c2, ReplicaId(1), &t1, x));
    }

    #[test]
    fn entries_equal_replica_count() {
        let g = topologies::ring(7);
        let p = VectorProtocol::new(g);
        assert_eq!(p.new_clock(ReplicaId(0)).entries(), 7);
    }

    #[test]
    fn fifo_violation_rejected() {
        let g = topologies::line(2);
        let p = VectorProtocol::new(g);
        let x = RegisterId(0);
        let mut c0 = p.new_clock(ReplicaId(0));
        p.advance(ReplicaId(0), &mut c0, x);
        p.advance(ReplicaId(0), &mut c0, x);
        let t2 = c0.clone();
        let c1 = p.new_clock(ReplicaId(1));
        assert!(!p.deliverable(ReplicaId(1), &c1, ReplicaId(0), &t2, x));
    }
}
