//! Wire (de)serialization support for timestamps.
//!
//! All three clock representations share the same shape: an immutable,
//! statically configured index set plus a dense vector of `u64` counters.
//! Only the counters travel on the wire (LEB128 varints, see
//! [`crate::encoding`]); the receiving endpoint reconstructs the index set
//! from its own copy of the share-graph configuration and the issuer id.
//!
//! [`WireClock`] is the contract the networked deployment (`prcc-service`)
//! builds on: expose the counters for encoding, and load decoded counters
//! into a freshly minted template clock (`Protocol::new_clock(issuer)`).

use crate::encoding;
use crate::traits::ClockState;

/// Timestamps that can be shipped over a real wire.
///
/// Implementations must guarantee that for any clock `c` and a template
/// `t` created for the same replica under the same protocol configuration,
/// `t.load_counters(c.counter_values())` succeeds and makes `t == c`.
pub trait WireClock: ClockState {
    /// The dense counter vector, in the clock's canonical index order.
    fn counter_values(&self) -> &[u64];

    /// Replaces the counters with `counters`.
    ///
    /// Returns `false` (leaving the clock untouched) when the length does
    /// not match this clock's index set — the sign of a configuration
    /// mismatch between endpoints.
    fn load_counters(&mut self, counters: &[u64]) -> bool;

    /// Appends the varint encoding of the counters (count prefix included).
    fn encode_wire(&self, out: &mut Vec<u8>) {
        let counters = self.counter_values();
        encoding::write_varint(out, counters.len() as u64);
        for &c in counters {
            encoding::write_varint(out, c);
        }
    }

    /// Exact byte count [`WireClock::encode_wire`] will append — a sizing
    /// hint so in-place frame builders can reserve (or lease) right-sized
    /// buffers instead of growing mid-encode. (Distinct from
    /// [`crate::traits::ClockState::encoded_len`], the abstract metadata
    /// measure the paper's comparisons are plotted over.)
    fn wire_encoded_len(&self) -> usize {
        encoding::counters_len(self.counter_values())
    }

    /// Decodes counters produced by [`WireClock::encode_wire`] from the
    /// front of `buf` into `self`, advancing `offset`.
    ///
    /// Returns `false` on malformed input or an index-set length mismatch.
    fn decode_wire(&mut self, buf: &[u8], offset: &mut usize) -> bool {
        let Some(rest) = buf.get(*offset..) else {
            return false;
        };
        let Some((n, used)) = encoding::read_varint(rest) else {
            return false;
        };
        let mut at = *offset + used;
        // Clamp the pre-allocation: `n` is attacker-controlled on a real
        // wire, and an absurd claim must fail on decode, not on alloc.
        let mut counters = Vec::with_capacity((n as usize).min(1 << 16));
        for _ in 0..n {
            let Some((v, used)) = encoding::read_varint(&buf[at..]) else {
                return false;
            };
            counters.push(v);
            at += used;
        }
        if !self.load_counters(&counters) {
            return false;
        }
        *offset = at;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedProtocol, EdgeProtocol, Protocol, VectorProtocol};
    use prcc_graph::{topologies, RegisterId, ReplicaId};

    fn round_trip<P: Protocol>(p: &P)
    where
        P::Clock: WireClock,
    {
        let i = ReplicaId(0);
        let mut c = p.new_clock(i);
        for _ in 0..5 {
            p.advance(i, &mut c, RegisterId(0));
        }
        let mut buf = Vec::new();
        c.encode_wire(&mut buf);
        assert_eq!(buf.len(), c.wire_encoded_len(), "sizing hint must be exact");
        let mut out = p.new_clock(i);
        let mut offset = 0;
        assert!(out.decode_wire(&buf, &mut offset));
        assert_eq!(offset, buf.len());
        assert_eq!(out, c);
    }

    #[test]
    fn all_protocols_round_trip() {
        let g = topologies::ring(5);
        round_trip(&EdgeProtocol::new(g.clone()));
        round_trip(&CompressedProtocol::new(g.clone()));
        round_trip(&VectorProtocol::new(g));
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = topologies::ring(5);
        let p = EdgeProtocol::new(g);
        let c = p.new_clock(ReplicaId(0));
        let mut buf = Vec::new();
        c.encode_wire(&mut buf);
        // A clock over a different index set refuses the counters.
        let other = EdgeProtocol::new(topologies::line(2));
        let mut wrong = other.new_clock(ReplicaId(0));
        let mut offset = 0;
        assert!(!wrong.decode_wire(&buf, &mut offset));
        assert_eq!(offset, 0, "offset untouched on failure");
    }

    #[test]
    fn absurd_counter_count_rejected_without_allocating() {
        // A counter-count varint claiming 2^40 entries must fail on decode
        // (truncation), not abort the process trying to pre-allocate.
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut buf = Vec::new();
        crate::encoding::write_varint(&mut buf, 1 << 40);
        buf.extend_from_slice(&[0, 0, 0]);
        let mut clock = p.new_clock(ReplicaId(0));
        let mut offset = 0;
        assert!(!clock.decode_wire(&buf, &mut offset));
        // Out-of-range offset is also rejected, not a panic.
        let mut offset = buf.len() + 10;
        assert!(!clock.decode_wire(&buf, &mut offset));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = topologies::ring(4);
        let p = EdgeProtocol::new(g);
        let mut c = p.new_clock(ReplicaId(1));
        p.advance(ReplicaId(1), &mut c, RegisterId(1));
        let mut buf = Vec::new();
        c.encode_wire(&mut buf);
        let mut out = p.new_clock(ReplicaId(1));
        let mut offset = 0;
        assert!(!out.decode_wire(&buf[..buf.len() - 1], &mut offset));
    }
}
