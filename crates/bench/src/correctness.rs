//! Experiments E01–E07: the paper's worked figures, counterexamples and
//! the Theorem 8 necessity demonstrations.

use crate::helpers::{table, ShrinkingDelay};
use crate::row;
use prcc_baselines::edge_sets;
use prcc_checker::Oracle;
use prcc_clock::EdgeProtocol;
use prcc_core::Cluster;
use prcc_graph::{edge, hoops, loops, topologies, Edge, RegisterId, ReplicaId, TimestampGraph};
use prcc_net::FixedDelay;
use prcc_workloads::{violation_rate, WorkloadConfig};

/// E01 (Figure 2): the happened-before relation on the paper's 3-replica
/// example.
pub fn e01_happened_before() -> String {
    // r1 issues u1 (applied at r1 only) and u2 (applied at r1, r2); r2
    // issues u3 (applied at r2, r3); r3 issues u4 (applied at r3).
    let g = prcc_graph::ShareGraphBuilder::new()
        .replica_raw([0, 1])
        .replica_raw([1, 2])
        .replica_raw([2, 3])
        .build()
        .unwrap();
    let mut o = Oracle::new(&g);
    let u1 = o.on_issue(ReplicaId(0), RegisterId(0));
    let u2 = o.on_issue(ReplicaId(0), RegisterId(1));
    let u4 = o.on_issue(ReplicaId(2), RegisterId(3));
    o.on_apply(ReplicaId(1), u2).unwrap();
    let u3 = o.on_issue(ReplicaId(1), RegisterId(2));
    o.on_apply(ReplicaId(2), u3).unwrap();
    let ids = [("u1", u1), ("u2", u2), ("u3", u3), ("u4", u4)];
    let mut rows = Vec::new();
    for (na, a) in ids {
        for (nb, b) in ids {
            if a == b {
                continue;
            }
            let rel = if o.happened_before(a, b) {
                "↪"
            } else if o.concurrent(a, b) {
                "∥"
            } else {
                "·"
            };
            rows.push(row![na, rel, nb]);
        }
    }
    let mut out = String::from("E01 — Figure 2: happened-before relation ↪\n");
    out.push_str(&table(&["from", "rel", "to"], &rows));
    out.push_str(&format!(
        "\npaper: u1↪u2 [{}], u2↪u3 [{}], u1↪u3 [{}], u1∥u4 [{}], u2∥u4 [{}]\n",
        o.happened_before(u1, u2),
        o.happened_before(u2, u3),
        o.happened_before(u1, u3),
        o.concurrent(u1, u4),
        o.concurrent(u2, u4),
    ));
    out
}

/// E02 (Figure 3): the share graph of the Section 3 example.
pub fn e02_share_graph() -> String {
    let g = topologies::figure3();
    let mut rows = Vec::new();
    for i in g.replicas() {
        rows.push(row![
            format!("r{}", i.index() + 1),
            g.registers_of(i),
            g.neighbors(i)
                .iter()
                .map(|n| format!("r{}", n.index() + 1))
                .collect::<Vec<_>>()
                .join(",")
        ]);
    }
    let mut out = String::from("E02 — Figure 3: share graph (1-indexed as in the paper)\n");
    out.push_str(&table(&["replica", "X_i", "neighbors"], &rows));
    out.push_str(&format!(
        "\nX23 = {} (paper: {{y}});  X14 = {} (paper: ∅)\n",
        g.shared(ReplicaId(1), ReplicaId(2)),
        g.shared(ReplicaId(0), ReplicaId(3)),
    ));
    out.push_str("\nDOT:\n");
    out.push_str(&prcc_graph::dot::share_graph_dot(&g));
    out
}

/// E03 (Figure 5): the timestamp graph `G_1` of the running example,
/// including the (non-)existence of the decisive loops.
pub fn e03_timestamp_graph() -> String {
    let g = topologies::figure5();
    let g1 = TimestampGraph::compute(&g, ReplicaId(0));
    let mut out = String::from("E03 — Figure 5: timestamp graph G_1 (0-indexed replicas)\n");
    out.push_str(&format!("{g1}\n\n"));
    let cases = [
        ("(1,e43)-loop", edge(3, 2)),
        ("(1,e32)-loop", edge(2, 1)),
        ("(1,e34)-loop", edge(2, 3)),
        ("(1,e23)-loop", edge(1, 2)),
    ];
    let mut rows = Vec::new();
    for (name, e) in cases {
        let found = loops::find_loop(&g, ReplicaId(0), e);
        rows.push(row![
            name,
            found
                .as_ref()
                .map(|w| w.to_string())
                .unwrap_or_else(|| "none".into()),
            found.map(|w| w.verify(&g)).unwrap_or(true)
        ]);
    }
    out.push_str(&table(&["loop", "witness", "verified"], &rows));
    out.push_str(&format!(
        "\ne43 ∈ G_1: {} (paper: yes);  e34 ∈ G_1: {} (paper: no)\n",
        g1.contains(edge(3, 2)),
        g1.contains(edge(2, 3)),
    ));
    out
}

/// E04 (Figure 6 / 8a): counterexample 1 — the original minimal-hoop
/// criterion over-tracks; the loop criterion's smaller set still never
/// violates consistency.
pub fn e04_counterexample1() -> String {
    let (g, r) = topologies::counterexample1();
    let gi = TimestampGraph::compute(&g, r.i);
    let hm = hoops::tracked_registers_original(&g, r.i);
    let ours = hoops::tracked_registers_loops(&g, &gi);
    let hm_sets = edge_sets::hoop_based(&g, false);
    let mut out =
        String::from("E04 — Counterexample 1 (Fig. 6/8a): original minimal hoops over-track\n");
    let rows = vec![
        row!["registers i must track", hm, ours],
        row!["tracks x (by j,k)?", hm.contains(r.x), ours.contains(r.x)],
        row![
            "timestamp entries at i",
            hm_sets[r.i.index()].len(),
            gi.len()
        ],
        row![
            "tracks e_jk / e_kj?",
            format!(
                "{} / {}",
                hm_sets[r.i.index()].contains(Edge::new(r.j, r.k)),
                hm_sets[r.i.index()].contains(Edge::new(r.k, r.j))
            ),
            format!(
                "{} / {}",
                gi.contains(Edge::new(r.j, r.k)),
                gi.contains(Edge::new(r.k, r.j))
            )
        ],
    ];
    out.push_str(&table(
        &["quantity", "Hélary–Milani (orig.)", "this paper"],
        &rows,
    ));
    // The smaller set is sufficient: no violation across randomized runs.
    let (rate, reports) = violation_rate(
        || EdgeProtocol::new(g.clone()),
        |seed| Box::new(prcc_net::UniformDelay::new(seed * 7 + 1, 1, 80)),
        WorkloadConfig {
            total_writes: 120,
            interleave: 1,
            ..Default::default()
        },
        50,
    );
    out.push_str(&format!(
        "\nexact-E_i protocol over 50 random schedules × {} writes: violation rate = {rate}\n",
        reports[0].stats.updates_issued
    ));
    out
}

/// The adversarial schedule of counterexample 2: hold the direct `k→j`
/// link, send an `x`-dependency around the 7-cycle. Returns the number of
/// safety violations.
fn run_ce2_chain<P: prcc_clock::Protocol>(protocol: P) -> usize {
    let (_, r) = topologies::counterexample2();
    let mut cluster = Cluster::new(protocol, Box::new(FixedDelay(5)));
    cluster.net_mut().hold_link(r.k.index(), r.j.index());
    cluster.write(r.k, r.x, 1).unwrap();
    cluster.run_to_quiescence();
    let chain = [
        (r.k, RegisterId(5)),
        (r.a2, RegisterId(6)),
        (r.a1, RegisterId(4)),
        (r.i, RegisterId(3)),
        (r.b2, r.y),
        (r.b1, RegisterId(2)),
    ];
    for (rep, reg) in chain {
        cluster.write(rep, reg, 0).unwrap();
        cluster.run_to_quiescence();
    }
    cluster.verdict().safety.len()
}

/// E05 (Figure 8b): counterexample 2 — the *modified* minimal-hoop
/// criterion under-tracks and is executable-unsafe; the exact `E_i` is safe
/// under the identical schedule.
pub fn e05_counterexample2() -> String {
    let (g, r) = topologies::counterexample2();
    let gi = TimestampGraph::compute(&g, r.i);
    let hm_mod = edge_sets::hoop_based(&g, true);
    let mut out =
        String::from("E05 — Counterexample 2 (Fig. 8b): modified minimal hoops are unsafe\n");
    let rows = vec![
        row![
            "e_kj tracked at i?",
            hm_mod[r.i.index()].contains(Edge::new(r.k, r.j)),
            gi.contains(Edge::new(r.k, r.j))
        ],
        row![
            "safety violations under the 7-cycle schedule",
            run_ce2_chain(edge_sets::hoop_protocol(&g, true)),
            run_ce2_chain(EdgeProtocol::new(g.clone()))
        ],
    ];
    out.push_str(&table(&["quantity", "HM modified", "this paper"], &rows));
    out.push_str(
        "\nSchedule: k writes x (k→j held back); dependency chain\n\
         k →u4 a2 →u5 a1 →u3 i →u2 b2 →y b1 →u1 j; j then applies the chain\n\
         head without k's x-update — a safety violation iff e_kj is untracked.\n",
    );
    out
}

/// E06 (Figure 9): the timestamp graphs of every replica of
/// counterexample 1.
pub fn e06_ce1_graphs() -> String {
    let (g, r) = topologies::counterexample1();
    let names = [
        (r.i, "i"),
        (r.a1, "a1"),
        (r.a2, "a2"),
        (r.k, "k"),
        (r.j, "j"),
        (r.b1, "b1"),
        (r.b2, "b2"),
    ];
    let mut out = String::from("E06 — Figure 9: timestamp graphs of counterexample 1\n");
    let mut rows = Vec::new();
    for (rep, name) in names {
        let t = TimestampGraph::compute(&g, rep);
        rows.push(row![
            format!("G_{name}"),
            t.len(),
            t.incident_edges().count(),
            t.loop_edges().count()
        ]);
    }
    out.push_str(&table(&["graph", "|E_i|", "incident", "loop edges"], &rows));
    let sym = [
        (r.j, r.k, "G_j ≅ G_k"),
        (r.b1, r.a2, "G_b1 ≅ G_a2"),
        (r.b2, r.a1, "G_b2 ≅ G_a1"),
    ];
    out.push('\n');
    for (a, b, label) in sym {
        out.push_str(&format!(
            "{label}: sizes {} = {}\n",
            TimestampGraph::compute(&g, a).len(),
            TimestampGraph::compute(&g, b).len()
        ));
    }
    out
}

/// E07 (Theorem 8, proof cases 1–3): dropping any single tracked edge
/// admits an execution violating safety, while the full `E_i` is safe under
/// the same schedule.
pub fn e07_necessity() -> String {
    let mut rows = Vec::new();

    // Case 1: i oblivious to its own outgoing edge e_ij — two writes by i
    // delivered in reverse order at j.
    let g = topologies::line(2);
    let case1 = |protocol: EdgeProtocol| -> usize {
        let mut c = Cluster::new(protocol, Box::new(ShrinkingDelay::new(20, 10)));
        c.write(ReplicaId(0), RegisterId(0), 1).unwrap();
        c.write(ReplicaId(0), RegisterId(0), 2).unwrap();
        c.run_to_quiescence();
        c.verdict().safety.len()
    };
    rows.push(row![
        "case 1: drop e_ij at i",
        case1(edge_sets::drop_edge_protocol(&g, ReplicaId(0), edge(0, 1))),
        case1(EdgeProtocol::new(g.clone()))
    ]);

    // Case 2: i oblivious to an incoming edge e_ji — two writes by j
    // delivered in reverse order at i.
    let case2 = |protocol: EdgeProtocol| -> usize {
        let mut c = Cluster::new(protocol, Box::new(ShrinkingDelay::new(20, 10)));
        c.write(ReplicaId(1), RegisterId(0), 1).unwrap();
        c.write(ReplicaId(1), RegisterId(0), 2).unwrap();
        c.run_to_quiescence();
        c.verdict().safety.len()
    };
    rows.push(row![
        "case 2: drop e_ji at i",
        case2(edge_sets::drop_edge_protocol(&g, ReplicaId(0), edge(1, 0))),
        case2(EdgeProtocol::new(g.clone()))
    ]);

    // Case 3: i oblivious to a loop edge e_jk — counterexample 2's cycle
    // schedule with exactly e_kj removed from E_i.
    let (g2, r2) = topologies::counterexample2();
    rows.push(row![
        "case 3: drop loop edge e_kj at i",
        run_ce2_chain(edge_sets::drop_edge_protocol(
            &g2,
            r2.i,
            Edge::new(r2.k, r2.j)
        )),
        run_ce2_chain(EdgeProtocol::new(g2.clone()))
    ]);

    let mut out = String::from(
        "E07 — Theorem 8: every tracked edge is necessary (safety violations\n\
         under the proof-case schedules; 0 for the full E_i control)\n",
    );
    out.push_str(&table(&["case", "oblivious replica", "full E_i"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_matches_figure2() {
        let out = e01_happened_before();
        assert!(out.contains("u1↪u2 [true]"));
        assert!(out.contains("u1∥u4 [true]"));
    }

    #[test]
    fn e02_matches_figure3() {
        let out = e02_share_graph();
        assert!(out.contains("X23 = {x1} (paper: {y})"));
        assert!(out.contains("X14 = {} (paper: ∅)"));
    }

    #[test]
    fn e03_loops() {
        let out = e03_timestamp_graph();
        assert!(out.contains("e43 ∈ G_1: true"));
        assert!(out.contains("e34 ∈ G_1: false"));
    }

    #[test]
    fn e04_overtracking_shown() {
        let out = e04_counterexample1();
        assert!(out.contains("violation rate = 0"));
        // HM tracks x at i, we don't.
        assert!(out.contains("| true "), "{out}");
        assert!(out.contains("| false "), "{out}");
    }

    #[test]
    fn e05_violation_asymmetry() {
        let out = e05_counterexample2();
        // HM-modified violates (≥1), exact is safe (0).
        let line = out
            .lines()
            .find(|l| l.contains("safety violations"))
            .unwrap();
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        let hm: usize = cells[2].parse().unwrap();
        let exact: usize = cells[3].parse().unwrap();
        assert!(hm >= 1, "{out}");
        assert_eq!(exact, 0, "{out}");
    }

    #[test]
    fn e06_symmetries_hold() {
        let out = e06_ce1_graphs();
        for label in ["G_j ≅ G_k", "G_b1 ≅ G_a2", "G_b2 ≅ G_a1"] {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            let nums: Vec<&str> = line.split("sizes ").nth(1).unwrap().split(" = ").collect();
            assert_eq!(nums[0], nums[1], "{line}");
        }
    }

    #[test]
    fn e07_all_cases_violate_without_edge_only() {
        let out = e07_necessity();
        for case in ["case 1", "case 2", "case 3"] {
            let line = out.lines().find(|l| l.contains(case)).unwrap();
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            let oblivious: usize = cells[2].parse().unwrap();
            let full: usize = cells[3].parse().unwrap();
            assert!(oblivious >= 1, "{line}");
            assert_eq!(full, 0, "{line}");
        }
    }
}
