//! Experiments E08–E15: the paper's quantitative claims (timestamp sizes,
//! lower bounds, compression, dummy registers, ring breaking, bounded
//! loops, client-server, and the cross-protocol matrix).

use crate::helpers::table;
use crate::row;
use prcc_baselines::{edge_sets, DummyProtocol, RingBreaker};
use prcc_clock::{ClockState, CompressedProtocol, EdgeProtocol, Protocol, VectorProtocol};
use prcc_core::Cluster;
use prcc_graph::{
    analysis, topologies, AugmentedShareGraph, RegisterId, ReplicaId, ShareGraph, TimestampGraph,
};
use prcc_lowerbound::{chromatic, closed_forms, conflict_graph, families};
use prcc_net::{FixedDelay, UniformDelay};
use prcc_workloads::{run_workload, violation_rate, RunReport, WorkloadConfig};

/// E08 (Section 4 closed forms): timestamp entries per replica across
/// structured topologies, against the paper's predictions.
pub fn e08_sizes() -> String {
    let mut rows = Vec::new();
    let mut check = |name: &str, g: &ShareGraph, i: ReplicaId, predicted: usize, rule: &str| {
        let measured = TimestampGraph::compute(g, i).len();
        rows.push(row![
            name,
            i,
            measured,
            predicted,
            rule,
            if measured == predicted { "✓" } else { "✗" }
        ]);
    };
    let line = topologies::line(6);
    check("line(6)", &line, ReplicaId(0), 2, "tree: 2·N_i");
    check("line(6)", &line, ReplicaId(3), 4, "tree: 2·N_i");
    let star = topologies::star(6);
    check("star(6)", &star, ReplicaId(0), 10, "tree: 2·N_i");
    check("star(6)", &star, ReplicaId(2), 2, "tree: 2·N_i");
    for n in [4, 5, 6, 7] {
        let ring = topologies::ring(n);
        check(
            &format!("ring({n})"),
            &ring,
            ReplicaId(0),
            2 * n,
            "cycle: 2n",
        );
    }
    let clique = topologies::clique_full(4, 3);
    check(
        "clique_full(4)",
        &clique,
        ReplicaId(0),
        12,
        "clique: R(R−1)",
    );
    let fig5 = topologies::figure5();
    check("figure5", &fig5, ReplicaId(0), 8, "exact G_1 (Fig. 5b)");

    let mut out = String::from("E08 — timestamp sizes vs Section 4 closed forms\n");
    out.push_str(&table(
        &["topology", "replica", "|E_i|", "predicted", "rule", "ok"],
        &rows,
    ));
    // Compressed full replication = vector clocks.
    let rep =
        analysis::compression_report(&clique, &TimestampGraph::compute(&clique, ReplicaId(0)));
    out.push_str(&format!(
        "\nclique_full(4): raw {} entries, rank-compressed {} = R (vector timestamp)\n",
        rep.raw_entries, rep.rank_entries
    ));
    out
}

/// E09 (Theorem 15): explicit conflict cliques vs the algorithm's timestamp
/// usage — tightness on trees, cycles and full-replication cliques.
pub fn e09_lower_bound() -> String {
    let mut rows = Vec::new();
    {
        let g = topologies::line(3);
        let i = ReplicaId(1);
        let fam = families::incident_family(&g, i, 2);
        rows.push(row![
            "line(3), mid",
            format!("incident, c=2"),
            fam.len(),
            format!("{:.1}", fam.bits()),
            format!("{:.1}", closed_forms::tree_bits(2, 2)),
            families::algorithm_timestamps(&g, &fam)
        ]);
    }
    {
        let g = topologies::ring(3);
        let i = ReplicaId(0);
        let fam = families::ring_family(&g, i, 2);
        rows.push(row![
            "ring(3)",
            "all edges, c=2",
            fam.len(),
            format!("{:.1}", fam.bits()),
            format!("{:.1}", closed_forms::cycle_bits(3, 2)),
            families::algorithm_timestamps(&g, &fam)
        ]);
    }
    {
        let g = topologies::ring(4);
        let i = ReplicaId(0);
        let fam = families::ring_family(&g, i, 2);
        rows.push(row![
            "ring(4)",
            "all edges, c=2",
            fam.len(),
            format!("{:.1}", fam.bits()),
            format!("{:.1}", closed_forms::cycle_bits(4, 2)),
            families::algorithm_timestamps(&g, &fam)
        ]);
    }
    {
        let g = topologies::clique_full(3, 1);
        let i = ReplicaId(0);
        let fam = families::clique_family(&g, i, 2);
        rows.push(row![
            "clique_full(3)",
            "per replica, c=2",
            fam.len(),
            format!("{:.1}", fam.bits()),
            format!("{:.1}", closed_forms::clique_bits(3, 2)),
            "8 (vector clock)".to_string()
        ]);
    }
    let mut out = String::from(
        "E09 — Theorem 15 lower bounds: pairwise-conflicting families\n\
         (clique size ⇒ σ_i ≥ size; bits = log2; tight when the algorithm\n\
         assigns exactly that many distinct timestamps)\n",
    );
    out.push_str(&table(
        &[
            "system",
            "family",
            "clique",
            "bits",
            "closed form",
            "alg. stamps",
        ],
        &rows,
    ));
    // Exact chromatic number of a small conflict graph confirms the clique
    // is not an artifact.
    let g = topologies::line(2);
    let fam = families::incident_family(&g, ReplicaId(0), 2);
    let adj = conflict_graph(&g, ReplicaId(0), &fam.pasts);
    out.push_str(&format!(
        "\nline(2) family: |family| = {}, exact χ(conflict subgraph) = {}\n",
        fam.len(),
        chromatic::exact_chromatic(&adj)
    ));
    out
}

/// E10 (Appendix D compression): raw vs rank vs register-level entries.
pub fn e10_compression() -> String {
    let mut rows = Vec::new();
    let mut add = |name: &str, g: &ShareGraph, i: ReplicaId| {
        let tsg = TimestampGraph::compute(g, i);
        let rep = analysis::compression_report(g, &tsg);
        rows.push(row![
            name,
            i,
            rep.raw_entries,
            rep.rank_entries,
            rep.register_entries,
            format!("{:.0}%", rep.savings() * 100.0)
        ]);
    };
    let fig5 = topologies::figure5();
    add("figure5", &fig5, ReplicaId(0));
    let ring = topologies::ring(5);
    add("ring(5)", &ring, ReplicaId(0));
    let clique = topologies::clique_full(4, 3);
    add("clique_full(4,3)", &clique, ReplicaId(0));
    let star = topologies::star(5);
    add("star(5) hub", &star, ReplicaId(0));
    // The paper's worked example: X_j1={x}, X_j2={y}, X_j3={z},
    // X_j4={x,y,z} → 4 edges, 3 independent counters.
    let worked = ShareGraph::from_assignments(vec![
        vec![RegisterId(0), RegisterId(1), RegisterId(2)],
        vec![RegisterId(0)],
        vec![RegisterId(1)],
        vec![RegisterId(2)],
        vec![RegisterId(0), RegisterId(1), RegisterId(2)],
    ])
    .unwrap();
    let synthetic = TimestampGraph::from_edges(
        ReplicaId(4),
        (1..5).map(|k| prcc_graph::Edge::new(ReplicaId(0), ReplicaId(k))),
    );
    let rep = analysis::compression_report(&worked, &synthetic);
    rows.push(row![
        "worked example O_j",
        ReplicaId(4),
        rep.raw_entries,
        rep.rank_entries,
        rep.register_entries,
        format!("{:.0}%", rep.savings() * 100.0)
    ]);
    let mut out = String::from(
        "E10 — timestamp compression (Appendix D): raw |E_i| vs rank\n\
         I(E_i,·) vs register-level counters\n",
    );
    out.push_str(&table(
        &[
            "system",
            "replica",
            "raw",
            "rank",
            "register-level",
            "savings",
        ],
        &rows,
    ));
    out
}

fn report_row(name: &str, r: &RunReport, entries: usize, rank: usize) -> Vec<String> {
    row![
        name,
        entries,
        rank,
        format!("{:.1}", r.stats.messages_per_update()),
        r.stats.metadata_only_messages,
        format!("{:.1}", r.stats.bytes_per_message()),
        format!("{:.1}", r.stats.mean_pending_stall()),
        r.consistent()
    ]
}

fn total_rank(g: &ShareGraph) -> usize {
    analysis::total_entries(g).1
}

/// E11 (Appendix D dummy registers): partial replication vs
/// full-replication emulation vs plain vector clocks — metadata size vs
/// message and false-dependency cost.
pub fn e11_dummies() -> String {
    let g = topologies::ring(5);
    let cfg = WorkloadConfig {
        total_writes: 200,
        seed: 11,
        interleave: 1,
        hotspot: None,
    };
    let policy = |seed: u64| -> Box<dyn prcc_net::DeliveryPolicy> {
        Box::new(UniformDelay::new(seed + 100, 1, 40))
    };
    let mut rows = Vec::new();
    {
        let p = EdgeProtocol::new(g.clone());
        let entries = p.new_clock(ReplicaId(0)).entries();
        let r = run_workload(p, policy(1), cfg);
        rows.push(report_row(
            "partial (ours)",
            &r,
            entries,
            total_rank(&g) / 5,
        ));
    }
    {
        let p = DummyProtocol::full_emulation(g.clone());
        let entries = p.new_clock(ReplicaId(0)).entries();
        let meta = p.metadata_graph().clone();
        let r = run_workload(p, policy(2), cfg);
        rows.push(report_row(
            "full emulation (dummies)",
            &r,
            entries,
            total_rank(&meta) / 5,
        ));
    }
    {
        let p = VectorProtocol::new(g.clone());
        let entries = p.new_clock(ReplicaId(0)).entries();
        let r = run_workload(p, policy(3), cfg);
        rows.push(report_row("vector clock (broadcast)", &r, entries, 5));
    }
    let mut out = String::from(
        "E11 — dummy registers (Appendix D): ring(5), 200 writes.\n\
         Fewer counters ⇔ more messages + false-dependency stalls.\n",
    );
    out.push_str(&table(
        &[
            "scheme",
            "entries/replica",
            "rank",
            "msgs/update",
            "metadata-only",
            "bytes/msg",
            "stall",
            "consistent",
        ],
        &rows,
    ));
    out
}

/// E12 (Figure 13): breaking the ring with virtual registers.
pub fn e12_ring_breaking() -> String {
    let n = 6;
    // Unbroken ring: replica 0 writes register n−1 (shared with n−1
    // directly).
    let g = topologies::ring(n);
    let mut ring_cluster = Cluster::new(EdgeProtocol::new(g.clone()), Box::new(FixedDelay(10)));
    for v in 0..20u64 {
        ring_cluster
            .write(ReplicaId(0), RegisterId((n - 1) as u32), v)
            .unwrap();
        ring_cluster.run_to_quiescence();
    }
    let ring_stats = ring_cluster.stats();
    let ring_entries = TimestampGraph::compute(&g, ReplicaId(0)).len();

    // Broken ring: relayed x updates.
    let mut rb = RingBreaker::new(n, Box::new(FixedDelay(10)));
    for v in 0..20u64 {
        rb.write_x(v).unwrap();
        rb.run_to_quiescence();
    }
    let rb_entries = rb.timestamp_entries();
    let rows = vec![
        row![
            "ring(6)",
            ring_entries,
            format!("{:.1}", ring_stats.messages_per_update()),
            format!("{:.1}", ring_stats.mean_apply_latency()),
            ring_cluster.verdict().is_consistent()
        ],
        row![
            "broken ring (relay)",
            format!(
                "{:?} (max {})",
                rb_entries,
                rb_entries.iter().max().unwrap()
            ),
            format!(
                "{:.1}",
                rb.stats().relay_hops as f64 / rb.stats().x_updates as f64
            ),
            format!("{:.1}", rb.stats().mean_x_latency()),
            rb.verdict().is_consistent()
        ],
    ];
    let mut out = String::from(
        "E12 — Figure 13: breaking the ring. 20 x-updates, fixed 10-tick\n\
         links. Metadata shrinks from 2n per replica to ≤ 4; propagation\n\
         pays n−1 hops.\n",
    );
    out.push_str(&table(
        &[
            "scheme",
            "entries/replica",
            "msgs per x-update",
            "x latency",
            "consistent",
        ],
        &rows,
    ));
    out
}

/// The bounded-loop adversarial schedule on `ring(6)`: hold the direct
/// `1→0` link, run a dependency chain the long way round.
fn ring6_chain_violations(l: usize) -> usize {
    let g = topologies::ring(6);
    let mut c = Cluster::new(
        edge_sets::bounded_loop_protocol(&g, l),
        Box::new(FixedDelay(5)),
    );
    c.net_mut().hold_link(1, 0);
    c.write(ReplicaId(1), RegisterId(0), 9).unwrap(); // u0: 1→0, held
    c.run_to_quiescence();
    for p in 1..6 {
        // p writes register p (shared with p+1 mod 6).
        c.write(ReplicaId(p), RegisterId(p as u32), 0).unwrap();
        c.run_to_quiescence();
    }
    c.verdict().safety.len()
}

/// E13 (Appendix D sacrificing causality): bounded-loop tracking — metadata
/// vs safety, under asynchrony and under loose synchrony.
pub fn e13_bounded_loops() -> String {
    let g = topologies::ring(6);
    let mut rows = Vec::new();
    for l in [2usize, 3, 4, 5] {
        let sets = edge_sets::bounded_loops(&g, l);
        let entries = sets[0].len();
        let chain = ring6_chain_violations(l);
        // Random workloads under loose synchrony (one hop beats any l-hop
        // chain): must be safe for every l ≥ 2 whose untracked loops are
        // longer than the synchrony bound.
        let (loose_rate, _) = violation_rate(
            || edge_sets::bounded_loop_protocol(&g, l),
            |seed| Box::new(UniformDelay::loosely_synchronous(seed + 5, 10, 5)),
            WorkloadConfig {
                total_writes: 150,
                interleave: 0,
                ..Default::default()
            },
            10,
        );
        rows.push(row![
            format!("l = {l}"),
            entries,
            chain,
            format!("{:.2}", loose_rate)
        ]);
    }
    let mut out = String::from(
        "E13 — bounded loops on ring(6): tracking only loops of ≤ l+1 edges.\n\
         The adversarial chain (held direct link) violates safety whenever\n\
         the 6-edge ring loop is untracked (l < 5); under loose synchrony\n\
         (1 hop beats 5) random runs stay consistent.\n",
    );
    out.push_str(&table(
        &[
            "bound",
            "entries/replica",
            "chain violations",
            "loose-sync rate",
        ],
        &rows,
    ));
    out
}

/// E14 (Section 6 / Appendix E): the client-server architecture.
pub fn e14_client_server() -> String {
    use prcc_clientserver::CsSystem;
    use prcc_graph::ClientId;

    let g = topologies::line(4);
    let plain: Vec<usize> = TimestampGraph::compute_all(&g)
        .iter()
        .map(|t| t.len())
        .collect();
    let aug = AugmentedShareGraph::new(
        g.clone(),
        vec![
            vec![ReplicaId(0), ReplicaId(3)],
            vec![ReplicaId(0), ReplicaId(1)],
            vec![ReplicaId(2), ReplicaId(3)],
        ],
    )
    .unwrap();
    let augmented: Vec<usize> = aug
        .augmented_timestamp_graphs()
        .iter()
        .map(|t| t.len())
        .collect();
    let mut rows = Vec::new();
    for i in 0..4 {
        rows.push(row![
            format!("r{i}"),
            plain[i],
            augmented[i],
            augmented[i] - plain[i]
        ]);
    }
    let mut out = String::from(
        "E14 — client-server: a client spanning replicas 0 and 3 closes a\n\
         cycle through the line; augmented timestamp graphs Ê_i grow.\n",
    );
    out.push_str(&table(
        &["replica", "|E_i| (no clients)", "|Ê_i|", "added"],
        &rows,
    ));

    // Correctness under a mixed client workload.
    let mut s = CsSystem::new(aug, Box::new(UniformDelay::new(77, 1, 25)));
    for round in 0..30u64 {
        s.write(ClientId(1), ReplicaId(0), RegisterId(0), round)
            .unwrap();
        s.write(ClientId(2), ReplicaId(2), RegisterId(2), round)
            .unwrap();
        if round % 3 == 0 {
            let _ = s.read(ClientId(0), ReplicaId(0), RegisterId(0)).unwrap();
            let _ = s.read(ClientId(0), ReplicaId(3), RegisterId(2)).unwrap();
        }
    }
    s.run_to_quiescence();
    let v = s.verdict();
    let st = s.stats().clone();
    out.push_str(&format!(
        "\nmixed workload: writes {}, reads {}, update msgs {}, rpc msgs {},\n\
         buffered requests {}, consistent (↪′ incl. client sessions): {}\n",
        st.writes,
        st.reads,
        st.update_messages,
        st.rpc_messages,
        st.buffered_requests,
        v.is_consistent()
    ));
    out
}

/// E15: the full protocol × topology matrix.
pub fn e15_protocol_matrix() -> String {
    let topologies: Vec<(&str, ShareGraph)> = vec![
        ("figure5", topologies::figure5()),
        ("ring(6)", topologies::ring(6)),
        ("line(6)", topologies::line(6)),
        ("clique_pw(5)", topologies::clique_pairwise(5)),
    ];
    let cfg = WorkloadConfig {
        total_writes: 200,
        seed: 42,
        interleave: 1,
        hotspot: None,
    };
    let mut rows = Vec::new();
    for (name, g) in &topologies {
        let runs: Vec<(String, RunReport, usize)> = vec![
            {
                let p = EdgeProtocol::new(g.clone());
                let e = (0..g.num_replicas())
                    .map(|i| p.new_clock(ReplicaId(i)).entries())
                    .sum();
                (
                    "edge-tsg".into(),
                    run_workload(p, Box::new(UniformDelay::new(7, 1, 30)), cfg),
                    e,
                )
            },
            {
                let p = CompressedProtocol::new(g.clone());
                let e = (0..g.num_replicas())
                    .map(|i| p.new_clock(ReplicaId(i)).entries())
                    .sum();
                (
                    "compressed".into(),
                    run_workload(p, Box::new(UniformDelay::new(7, 1, 30)), cfg),
                    e,
                )
            },
            {
                let p = edge_sets::all_edges_protocol(g);
                let e = g.num_directed_edges() * g.num_replicas();
                (
                    "all-edges".into(),
                    run_workload(p, Box::new(UniformDelay::new(7, 1, 30)), cfg),
                    e,
                )
            },
            {
                let p = edge_sets::hoop_protocol(g, false);
                let e = edge_sets::hoop_based(g, false)
                    .iter()
                    .map(|t| t.len())
                    .sum();
                (
                    "hoop-orig".into(),
                    run_workload(p, Box::new(UniformDelay::new(7, 1, 30)), cfg),
                    e,
                )
            },
            {
                let p = VectorProtocol::new(g.clone());
                let e = g.num_replicas() * g.num_replicas();
                (
                    "vector-bcast".into(),
                    run_workload(p, Box::new(UniformDelay::new(7, 1, 30)), cfg),
                    e,
                )
            },
        ];
        for (pname, r, entries) in runs {
            rows.push(row![
                name,
                pname,
                entries,
                format!("{:.2}", r.stats.messages_per_update()),
                format!("{:.1}", r.stats.bytes_per_message()),
                format!("{:.1}", r.stats.mean_apply_latency()),
                format!("{:.1}", r.stats.mean_pending_stall()),
                r.consistent()
            ]);
        }
    }
    let mut out = String::from(
        "E15 — protocol × topology matrix (200 writes each; total timestamp\n\
         entries across replicas; shape: ours ≤ hoop-orig ≤ all-edges, vector\n\
         smallest entries but broadcast messages)\n",
    );
    out.push_str(&table(
        &[
            "topology",
            "protocol",
            "entries(total)",
            "msgs/upd",
            "bytes/msg",
            "latency",
            "stall",
            "consistent",
        ],
        &rows,
    ));
    out
}

/// E16: scaling series — the partial-replication metadata trade-off as a
/// function of system size (the "figure" the introduction's trade-off
/// discussion implies): per-replica entries grow as `2n` on cycles while a
/// vector clock stays at `n`, but the vector baseline broadcasts `n−1`
/// messages per update, so its *wire* overhead per update grows
/// quadratically.
pub fn e16_scaling() -> String {
    let mut rows = Vec::new();
    for n in [3usize, 4, 5, 6, 8, 10] {
        let g = topologies::ring(n);
        let cfg = WorkloadConfig {
            total_writes: 100,
            seed: 3,
            interleave: 1,
            hotspot: None,
        };
        let ours = run_workload(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(5, 1, 30)),
            cfg,
        );
        let vector = run_workload(
            VectorProtocol::new(g.clone()),
            Box::new(UniformDelay::new(5, 1, 30)),
            cfg,
        );
        assert!(ours.consistent() && vector.consistent());
        rows.push(row![
            n,
            2 * n,
            n,
            format!("{:.0}", ours.stats.bytes_sent as f64 / 100.0),
            format!("{:.0}", vector.stats.bytes_sent as f64 / 100.0),
            format!(
                "{:.2}",
                vector.stats.bytes_sent as f64 / ours.stats.bytes_sent as f64
            )
        ]);
    }
    let mut out = String::from(
        "E16 — scaling on ring(n), 100 writes: entries per replica vs wire\n\
         bytes per update. Partial replication tracks 2n counters but sends\n\
         one message; the vector baseline keeps n counters but broadcasts,\n\
         so its per-update wire cost overtakes and diverges.\n",
    );
    out.push_str(&table(
        &[
            "n",
            "entries ours (2n)",
            "entries vector (n)",
            "bytes/update ours",
            "bytes/update vector",
            "vector/ours",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_vector_wire_cost_diverges() {
        let out = e16_scaling();
        let ratio = |n: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(&format!("| {n} ")))
                .unwrap()
                .split('|')
                .nth(6)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(ratio("3") > 1.0, "{out}");
        assert!(
            ratio("10") > ratio("3"),
            "vector overhead must grow with n: {out}"
        );
    }

    #[test]
    fn e08_all_predictions_hold() {
        let out = e08_sizes();
        assert!(!out.contains('✗'), "{out}");
        assert!(out.contains("rank-compressed 4 = R"));
    }

    #[test]
    fn e09_families_are_tight() {
        let out = e09_lower_bound();
        // line(3): clique 16, algorithm 16.
        assert!(out.contains("| 16"), "{out}");
        assert!(out.contains("exact χ(conflict subgraph) = 4"), "{out}");
    }

    #[test]
    fn e10_worked_example_compresses() {
        let out = e10_compression();
        let line = out.lines().find(|l| l.contains("worked example")).unwrap();
        assert!(line.contains("| 4 "), "{line}");
        assert!(line.contains("| 3 "), "{line}");
    }

    #[test]
    fn e11_tradeoffs_have_right_shape() {
        let out = e11_dummies();
        assert!(out.contains("partial (ours)"));
        // All schemes stay consistent.
        assert!(!out.contains("| false"), "{out}");
        // Partial sends 1 msg per update on the ring; broadcast sends 4.
        let partial = out.lines().find(|l| l.contains("partial")).unwrap();
        assert!(partial.contains("| 1.0 "), "{partial}");
        let vector = out.lines().find(|l| l.contains("vector")).unwrap();
        assert!(vector.contains("| 4.0 "), "{vector}");
    }

    #[test]
    fn e12_relay_pays_hops_but_shrinks_metadata() {
        let out = e12_ring_breaking();
        let ring = out.lines().find(|l| l.starts_with("| ring(6)")).unwrap();
        let broken = out.lines().find(|l| l.contains("broken")).unwrap();
        assert!(ring.contains("| 12 "), "{ring}");
        assert!(broken.contains("max 4"), "{broken}");
        assert!(broken.contains("| 5.0 "), "n−1 = 5 hops: {broken}");
        assert!(!out.contains("false"), "{out}");
    }

    #[test]
    fn e13_bound_crossover() {
        let out = e13_bounded_loops();
        let l2 = out.lines().find(|l| l.contains("l = 2")).unwrap();
        let l5 = out.lines().find(|l| l.contains("l = 5")).unwrap();
        // l=2 tracks 4 entries and violates under the chain; l=5 tracks 12
        // and is safe.
        assert!(l2.contains("| 4 "), "{l2}");
        assert!(l5.contains("| 12 "), "{l5}");
        let viol =
            |line: &str| -> usize { line.split('|').nth(3).unwrap().trim().parse().unwrap() };
        assert!(viol(l2) >= 1, "{l2}");
        assert_eq!(viol(l5), 0, "{l5}");
    }

    #[test]
    fn e14_client_grows_graphs_and_stays_consistent() {
        let out = e14_client_server();
        assert!(
            out.contains("consistent (↪′ incl. client sessions): true"),
            "{out}"
        );
        // Some replica gained tracked edges from the client bridge.
        let gained: usize = out
            .lines()
            .filter(|l| l.starts_with("| r") && !l.contains("replica"))
            .map(|l| {
                l.split('|')
                    .nth(4)
                    .unwrap()
                    .trim()
                    .parse::<usize>()
                    .unwrap()
            })
            .sum();
        assert!(gained > 0, "{out}");
    }

    #[test]
    fn e15_matrix_is_fully_consistent_and_ordered() {
        let out = e15_protocol_matrix();
        assert!(!out.contains("false"), "{out}");
        // On ring(6): ours (72) < all-edges (72)? all-edges = 12 edges × 6
        // replicas = 72 = ours (cycle tracks everything) — use figure5
        // instead for the strict ordering.
        let entries = |topo: &str, proto: &str| -> usize {
            out.lines()
                .find(|l| l.contains(topo) && l.contains(proto))
                .unwrap()
                .split('|')
                .nth(3)
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(entries("figure5", "edge-tsg") <= entries("figure5", "hoop-orig"));
        assert!(entries("figure5", "hoop-orig") <= entries("figure5", "all-edges"));
    }
}
