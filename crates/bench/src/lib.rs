//! Experiment harness: regenerates every figure and quantitative claim of
//! the paper (see DESIGN.md's experiment index E01–E15).
//!
//! Each `eXX_*` function returns a plain-text report (the "table" the paper
//! would print); the `experiments` binary runs them by id or all at once.
//! EXPERIMENTS.md records the outputs next to the paper's statements.

#![forbid(unsafe_code)]

pub mod correctness;
pub mod helpers;
pub mod tables;

/// An experiment: id plus runner.
pub type Experiment = (&'static str, fn() -> String);

/// All experiment ids with their runners, in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("e01", correctness::e01_happened_before as fn() -> String),
        ("e02", correctness::e02_share_graph),
        ("e03", correctness::e03_timestamp_graph),
        ("e04", correctness::e04_counterexample1),
        ("e05", correctness::e05_counterexample2),
        ("e06", correctness::e06_ce1_graphs),
        ("e07", correctness::e07_necessity),
        ("e08", tables::e08_sizes),
        ("e09", tables::e09_lower_bound),
        ("e10", tables::e10_compression),
        ("e11", tables::e11_dummies),
        ("e12", tables::e12_ring_breaking),
        ("e13", tables::e13_bounded_loops),
        ("e14", tables::e14_client_server),
        ("e15", tables::e15_protocol_matrix),
        ("e16", tables::e16_scaling),
    ]
}

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<String> {
    all_experiments()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f())
}

#[cfg(test)]
mod tests {
    #[test]
    fn ids_are_unique_and_ordered() {
        let ids: Vec<_> = super::all_experiments().iter().map(|(n, _)| *n).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), 16);
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(super::run_experiment("nope").is_none());
    }
}
