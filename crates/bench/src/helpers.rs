//! Shared helpers for experiments: adversarial delivery policies and table
//! formatting.

use prcc_net::{DeliveryPolicy, NodeIndex, VirtualTime};

/// A delivery policy whose per-message delays *shrink*: the `n`-th message
/// gets delay `max(start − n·step, 1)`. Two consecutive messages on the
/// same link are therefore delivered in reverse order — the deterministic
/// reordering used by the Theorem 8 Case 1/2 demonstrations (the paper:
/// "recall that the channel is not FIFO").
#[derive(Debug)]
pub struct ShrinkingDelay {
    start: u64,
    step: u64,
    count: u64,
}

impl ShrinkingDelay {
    /// Creates the policy.
    pub fn new(start: u64, step: u64) -> Self {
        ShrinkingDelay {
            start,
            step,
            count: 0,
        }
    }
}

impl DeliveryPolicy for ShrinkingDelay {
    fn delay(&mut self, _src: NodeIndex, _dst: NodeIndex, _now: VirtualTime) -> u64 {
        let d = self.start.saturating_sub(self.count * self.step).max(1);
        self.count += 1;
        d
    }
}

/// Formats rows of equal arity as an aligned ASCII table.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (c, h) in header.iter().enumerate() {
        width[c] = h.len();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (c, cell) in row.iter().enumerate() {
            width[c] = width[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], width: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", cell, w = width[c]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &width));
    let mut sep = String::from("|");
    for w in &width {
        sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &width));
    }
    out
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$(format!("{}", $cell)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_delay_reverses_pairs() {
        let mut p = ShrinkingDelay::new(20, 10);
        let d1 = p.delay(0, 1, VirtualTime::ZERO);
        let d2 = p.delay(0, 1, VirtualTime::ZERO);
        assert!(d2 < d1, "second message must overtake the first");
        // Floors at 1.
        for _ in 0..10 {
            assert!(p.delay(0, 1, VirtualTime::ZERO) >= 1);
        }
    }

    #[test]
    fn table_alignment() {
        let t = table(&["a", "topology"], &[row!["x", 12], row!["longer", 3]]);
        assert!(t.contains("| a      | topology |"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {t}");
    }
}
