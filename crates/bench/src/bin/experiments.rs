//! Experiment driver: `cargo run -p prcc-bench --bin experiments -- [id…|all]`.
//!
//! Regenerates the paper's figures and quantitative claims (E01–E15; see
//! DESIGN.md for the index and EXPERIMENTS.md for recorded outputs).

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        prcc_bench::all_experiments()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect()
    } else {
        args
    };
    for id in ids {
        match prcc_bench::run_experiment(&id) {
            Some(report) => {
                println!("{report}");
                println!("{}", "=".repeat(72));
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; available: {}",
                    prcc_bench::all_experiments()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
