//! Benchmarks of the combinatorial layer: `(i, e_jk)`-loop search and
//! timestamp-graph construction across topology families and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_graph::{loops, topologies, Edge, ReplicaId, TimestampGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_timestamp_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestamp_graph");
    for n in [6usize, 10, 14] {
        let ring = topologies::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &ring, |b, g| {
            b.iter(|| TimestampGraph::compute(black_box(g), ReplicaId(0)))
        });
    }
    for n in [4usize, 5, 6] {
        let clique = topologies::clique_pairwise(n);
        group.bench_with_input(BenchmarkId::new("clique_pairwise", n), &clique, |b, g| {
            b.iter(|| TimestampGraph::compute(black_box(g), ReplicaId(0)))
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let random = topologies::random_connected(8, 10, 3, &mut rng);
    group.bench_function("random(8,10,3)", |b| {
        b.iter(|| TimestampGraph::compute_all(black_box(&random)))
    });
    group.finish();
}

fn bench_loop_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_search");
    let g = topologies::ring(12);
    let e = Edge::new(ReplicaId(6), ReplicaId(5));
    group.bench_function("ring12_hit", |b| {
        b.iter(|| loops::find_loop(black_box(&g), ReplicaId(0), e).is_some())
    });
    let (ce, roles) = topologies::counterexample1();
    let ejk = Edge::new(roles.j, roles.k);
    group.bench_function("counterexample1_miss", |b| {
        b.iter(|| loops::find_loop(black_box(&ce), roles.i, ejk).is_none())
    });
    group.finish();
}

fn bench_hoops(c: &mut Criterion) {
    let (g, roles) = topologies::counterexample1();
    c.bench_function("hoops/tracked_original", |b| {
        b.iter(|| prcc_graph::hoops::tracked_registers_original(black_box(&g), roles.i))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = bench_timestamp_graphs, bench_loop_search, bench_hoops
}
criterion_main!(benches);
