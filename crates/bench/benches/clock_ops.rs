//! Microbenchmarks of the timestamp operations: `advance`, `merge` and the
//! delivery predicate `J`, as a function of timestamp length (topology).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_clock::{CompressedProtocol, EdgeProtocol, Protocol, VectorProtocol};
use prcc_graph::{topologies, RegisterId, ReplicaId};
use std::hint::black_box;

fn bench_edge_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_clock");
    for n in [4usize, 8, 12] {
        let g = topologies::ring(n);
        let p = EdgeProtocol::new(g);
        let i = ReplicaId(0);
        let x = RegisterId(0);
        group.bench_with_input(BenchmarkId::new("advance", n), &n, |b, _| {
            let mut clock = p.new_clock(i);
            b.iter(|| p.advance(i, black_box(&mut clock), x));
        });
        let mut sender = p.new_clock(ReplicaId(1));
        p.advance(ReplicaId(1), &mut sender, RegisterId(1));
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            let mut clock = p.new_clock(i);
            b.iter(|| p.merge(i, black_box(&mut clock), ReplicaId(1), &sender));
        });
        group.bench_with_input(BenchmarkId::new("predicate", n), &n, |b, _| {
            let clock = p.new_clock(i);
            b.iter(|| black_box(p.deliverable(i, &clock, ReplicaId(1), &sender, RegisterId(0))));
        });
    }
    group.finish();
}

fn bench_protocol_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_variants");
    let g = topologies::ring(8);
    let i = ReplicaId(0);
    let x = RegisterId(0);
    {
        let p = EdgeProtocol::new(g.clone());
        group.bench_function("edge/advance", |b| {
            let mut clock = p.new_clock(i);
            b.iter(|| p.advance(i, black_box(&mut clock), x));
        });
    }
    {
        let p = CompressedProtocol::new(g.clone());
        group.bench_function("compressed/advance", |b| {
            let mut clock = p.new_clock(i);
            b.iter(|| p.advance(i, black_box(&mut clock), x));
        });
    }
    {
        let p = VectorProtocol::new(g.clone());
        group.bench_function("vector/advance", |b| {
            let mut clock = p.new_clock(i);
            b.iter(|| p.advance(i, black_box(&mut clock), x));
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let counters: Vec<u64> = (0..64).map(|k| k * 1000).collect();
    c.bench_function("encoding/encode64", |b| {
        b.iter(|| prcc_clock::encoding::encode_counters(black_box(&counters)))
    });
    let buf = prcc_clock::encoding::encode_counters(&counters);
    c.bench_function("encoding/decode64", |b| {
        b.iter(|| prcc_clock::encoding::decode_counters(black_box(&buf)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = bench_edge_clock, bench_protocol_variants, bench_encoding
}
criterion_main!(benches);
