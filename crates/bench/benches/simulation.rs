//! End-to-end simulation throughput: full workload runs (writes, delivery,
//! predicate scans, oracle checks) per protocol and topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prcc_baselines::edge_sets;
use prcc_clock::{CompressedProtocol, EdgeProtocol, VectorProtocol};
use prcc_graph::topologies;
use prcc_net::UniformDelay;
use prcc_workloads::{run_workload, WorkloadConfig};
use std::hint::black_box;

const CFG: WorkloadConfig = WorkloadConfig {
    total_writes: 150,
    seed: 9,
    interleave: 1,
    hotspot: None,
};

fn bench_protocols_on_ring(c: &mut Criterion) {
    let g = topologies::ring(6);
    let mut group = c.benchmark_group("workload_ring6");
    group.bench_function("edge-tsg", |b| {
        b.iter(|| {
            black_box(run_workload(
                EdgeProtocol::new(g.clone()),
                Box::new(UniformDelay::new(1, 1, 30)),
                CFG,
            ))
        })
    });
    group.bench_function("compressed", |b| {
        b.iter(|| {
            black_box(run_workload(
                CompressedProtocol::new(g.clone()),
                Box::new(UniformDelay::new(1, 1, 30)),
                CFG,
            ))
        })
    });
    group.bench_function("all-edges", |b| {
        b.iter(|| {
            black_box(run_workload(
                edge_sets::all_edges_protocol(&g),
                Box::new(UniformDelay::new(1, 1, 30)),
                CFG,
            ))
        })
    });
    group.bench_function("vector-bcast", |b| {
        b.iter(|| {
            black_box(run_workload(
                VectorProtocol::new(g.clone()),
                Box::new(UniformDelay::new(1, 1, 30)),
                CFG,
            ))
        })
    });
    group.finish();
}

fn bench_topology_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_scaling");
    for n in [4usize, 8, 12] {
        let g = topologies::ring(n);
        group.bench_with_input(BenchmarkId::new("ring", n), &g, |b, g| {
            b.iter(|| {
                black_box(run_workload(
                    EdgeProtocol::new(g.clone()),
                    Box::new(UniformDelay::new(1, 1, 30)),
                    CFG,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_protocols_on_ring, bench_topology_scaling
}
criterion_main!(benches);
