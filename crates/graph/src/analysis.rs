//! Timestamp-compression analysis (Section 5 / Appendix D).
//!
//! The elements of the edge-indexed vector `τ_i` are not independent: for a
//! fixed source replica `j`, the counter of edge `e_jk` counts updates by
//! `j` to registers in `X_jk`, so counters of edges whose register sets are
//! linearly dependent (as indicator vectors) are linearly dependent too —
//! the paper's example being `X_j4 = {x,y,z}` determined by `X_j1 = {x}`,
//! `X_j2 = {y}`, `X_j3 = {z}`.
//!
//! This module computes, per source replica `j`, the rank `I(E_i, j)` of the
//! edge–register incidence matrix of `O_j = {e_jk ∈ E_i}` (the best-case
//! number of counters after compression), and the register-level
//! alternative (`|∪_k X_jk|` counters, one per register).

use crate::{ReplicaId, ShareGraph, TimestampGraph};
use serde::{Deserialize, Serialize};

/// Compression statistics for one replica's timestamp (Appendix D).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// The replica whose timestamp is analysed.
    pub replica: ReplicaId,
    /// Uncompressed entries: `|E_i|`.
    pub raw_entries: usize,
    /// Best-case compressed entries: `Σ_j I(E_i, j)` (matrix rank per
    /// source).
    pub rank_entries: usize,
    /// Register-level entries: `Σ_j |∪_{e_jk ∈ E_i} X_jk|`.
    pub register_entries: usize,
    /// Per-source breakdown `(j, |O_j|, I(E_i, j))`.
    pub per_source: Vec<(ReplicaId, usize, usize)>,
}

impl CompressionReport {
    /// Fraction of entries removed by rank compression (0 when nothing is
    /// saved).
    pub fn savings(&self) -> f64 {
        if self.raw_entries == 0 {
            0.0
        } else {
            1.0 - self.rank_entries as f64 / self.raw_entries as f64
        }
    }
}

/// Analyses the compressibility of replica `i`'s timestamp.
pub fn compression_report(g: &ShareGraph, tsg: &TimestampGraph) -> CompressionReport {
    let mut per_source = Vec::new();
    let mut rank_entries = 0;
    let mut register_entries = 0;
    for j in g.replicas() {
        let out = tsg.outgoing_of(j);
        if out.is_empty() {
            continue;
        }
        let rank = independent_counters(g, tsg, j);
        let mut regs = crate::RegSet::new(g.num_registers());
        for e in &out {
            regs.union_with(g.shared_on(*e));
        }
        per_source.push((j, out.len(), rank));
        rank_entries += rank;
        register_entries += regs.len();
    }
    CompressionReport {
        replica: tsg.replica(),
        raw_entries: tsg.len(),
        rank_entries,
        register_entries,
        per_source,
    }
}

/// `I(E_i, j)`: the maximum number of linearly independent outgoing edges of
/// `j` within `E_i`, i.e. the rank of the 0/1 matrix whose rows are the
/// indicator vectors of `X_jk` for `e_jk ∈ E_i`.
pub fn independent_counters(g: &ShareGraph, tsg: &TimestampGraph, j: ReplicaId) -> usize {
    let out = tsg.outgoing_of(j);
    if out.is_empty() {
        return 0;
    }
    // Restrict columns to registers that actually occur.
    let mut cols = crate::RegSet::new(g.num_registers());
    for e in &out {
        cols.union_with(g.shared_on(*e));
    }
    let col_ids: Vec<_> = cols.iter().collect();
    let matrix: Vec<Vec<i128>> = out
        .iter()
        .map(|e| {
            let s = g.shared_on(*e);
            col_ids
                .iter()
                .map(|&c| if s.contains(c) { 1 } else { 0 })
                .collect()
        })
        .collect();
    rank_i128(matrix)
}

/// Exact rank of an integer matrix via fraction-free (Bareiss) Gaussian
/// elimination.
///
/// Inputs here are 0/1 incidence matrices of modest size, so `i128`
/// intermediates cannot overflow in practice; overflow would panic in debug
/// builds.
pub fn rank_i128(mut m: Vec<Vec<i128>>) -> usize {
    let rows = m.len();
    if rows == 0 {
        return 0;
    }
    let cols = m[0].len();
    let mut rank = 0;
    let mut prev_pivot: i128 = 1;
    let mut row = 0;
    for col in 0..cols {
        // Find a pivot at or below `row`.
        let pivot_row = (row..rows).find(|&r| m[r][col] != 0);
        let Some(p) = pivot_row else { continue };
        m.swap(row, p);
        let pivot = m[row][col];
        for r in row + 1..rows {
            for c in col + 1..cols {
                m[r][c] = (m[r][c] * pivot - m[r][col] * m[row][c]) / prev_pivot;
            }
            m[r][col] = 0;
        }
        prev_pivot = pivot;
        rank += 1;
        row += 1;
        if row == rows {
            break;
        }
    }
    rank
}

/// Total compressed timestamp entries across all replicas of a system.
pub fn total_entries(g: &ShareGraph) -> (usize, usize) {
    let mut raw = 0;
    let mut compressed = 0;
    for tsg in TimestampGraph::compute_all(g) {
        let rep = compression_report(g, &tsg);
        raw += rep.raw_entries;
        compressed += rep.rank_entries;
    }
    (raw, compressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use crate::{RegisterId, ShareGraph};

    #[test]
    fn rank_basics() {
        assert_eq!(rank_i128(vec![]), 0);
        assert_eq!(rank_i128(vec![vec![0, 0], vec![0, 0]]), 0);
        assert_eq!(rank_i128(vec![vec![1, 0], vec![0, 1]]), 2);
        assert_eq!(rank_i128(vec![vec![1, 1], vec![1, 1]]), 1);
        // The paper's worked example: {x}, {y}, {z}, {x,y,z} has rank 3.
        assert_eq!(
            rank_i128(vec![
                vec![1, 0, 0],
                vec![0, 1, 0],
                vec![0, 0, 1],
                vec![1, 1, 1],
            ]),
            3
        );
    }

    #[test]
    fn paper_example_compresses_four_edges_to_three() {
        // Source j = replica 0 storing {x, y, z}; neighbors 1..=4 store
        // {x}, {y}, {z}, {x, y, z}. Full-sharing hub topology.
        let g = ShareGraph::from_assignments(vec![
            vec![RegisterId(0), RegisterId(1), RegisterId(2)],
            vec![RegisterId(0)],
            vec![RegisterId(1)],
            vec![RegisterId(2)],
            vec![RegisterId(0), RegisterId(1), RegisterId(2)],
        ])
        .unwrap();
        // Replica 4's timestamp graph contains all four outgoing edges of 0
        // (e_01..e_04 are incident or loop edges? 4 is adjacent to 0 only —
        // check O_0 from replica 4's perspective).
        let t4 = TimestampGraph::compute(&g, ReplicaId(4));
        let out = t4.outgoing_of(ReplicaId(0));
        // e_04 at minimum; the loop edges depend on the topology. For the
        // pure worked example use a synthetic timestamp graph with all four.
        assert!(!out.is_empty());
        let synthetic = TimestampGraph::from_edges(
            ReplicaId(4),
            (1..5).map(|k| crate::Edge::new(ReplicaId(0), ReplicaId(k))),
        );
        assert_eq!(independent_counters(&g, &synthetic, ReplicaId(0)), 3);
        let rep = compression_report(&g, &synthetic);
        assert_eq!(rep.raw_entries, 4);
        assert_eq!(rep.rank_entries, 3);
        assert_eq!(rep.register_entries, 3);
        assert!(rep.savings() > 0.24 && rep.savings() < 0.26);
    }

    #[test]
    fn full_replication_compresses_to_vector_clock() {
        // Section 5: "after compression, timestamps … have the same overhead
        // as the traditional vector timestamps": R−1 remote sources, one
        // counter each, plus the replica's own outgoing edges collapse to 1.
        let g = topologies::clique_full(4, 3);
        for tsg in TimestampGraph::compute_all(&g) {
            let rep = compression_report(&g, &tsg);
            assert_eq!(rep.raw_entries, 12);
            // Each source's outgoing edges all carry the same register set →
            // rank 1 per source, R sources.
            assert_eq!(rep.rank_entries, 4);
        }
    }

    #[test]
    fn ring_is_incompressible() {
        // Each ring source has two outgoing tracked edges with disjoint
        // singleton register sets → rank 2 each; no savings.
        let g = topologies::ring(5);
        for tsg in TimestampGraph::compute_all(&g) {
            let rep = compression_report(&g, &tsg);
            assert_eq!(rep.raw_entries, 10);
            assert_eq!(rep.rank_entries, 10);
            assert_eq!(rep.savings(), 0.0);
        }
    }

    #[test]
    fn tree_reports_incident_entries() {
        let g = topologies::star(5);
        let hub = TimestampGraph::compute(&g, ReplicaId(0));
        let rep = compression_report(&g, &hub);
        assert_eq!(rep.raw_entries, 8);
        // Each leaf has one outgoing edge (rank 1); the hub's 4 outgoing
        // edges carry disjoint singletons (rank 4).
        assert_eq!(rep.rank_entries, 8);
    }

    #[test]
    fn totals_are_sums() {
        let g = topologies::ring(4);
        let (raw, compressed) = total_entries(&g);
        assert_eq!(raw, 4 * 8);
        assert_eq!(compressed, 4 * 8);
    }
}
