//! Share-graph generators: structured topologies used by the paper's
//! analysis (rings, trees, cliques) and the exact fixtures of its figures.

use crate::{RegisterId, ReplicaId, ShareGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// A ring of `n ≥ 3` replicas: replica `p` shares a unique register with
/// each ring neighbor and nothing else (the Section 4 "cycle" topology and
/// the Figure 13 example with `n = 6`).
///
/// Register `p` is shared by replicas `p` and `(p+1) mod n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> ShareGraph {
    assert!(n >= 3, "a ring needs at least 3 replicas");
    let assignments = (0..n)
        .map(|p| vec![RegisterId(((p + n - 1) % n) as u32), RegisterId(p as u32)])
        .collect();
    ShareGraph::from_assignments(assignments).expect("ring is non-empty")
}

/// A line (path) of `n ≥ 2` replicas: register `p` shared by replicas `p`
/// and `p + 1`. A tree, so timestamp graphs contain only incident edges.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn line(n: usize) -> ShareGraph {
    assert!(n >= 2, "a line needs at least 2 replicas");
    let mut assignments = vec![Vec::new(); n];
    for p in 0..n - 1 {
        assignments[p].push(RegisterId(p as u32));
        assignments[p + 1].push(RegisterId(p as u32));
    }
    ShareGraph::from_assignments(assignments).expect("line is non-empty")
}

/// A star with `n − 1` leaves: leaf `p ∈ 1..n` shares register `p − 1` with
/// the hub (replica 0) only.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> ShareGraph {
    assert!(n >= 2, "a star needs at least 2 replicas");
    let mut assignments = vec![Vec::new(); n];
    for p in 1..n {
        assignments[0].push(RegisterId((p - 1) as u32));
        assignments[p].push(RegisterId((p - 1) as u32));
    }
    ShareGraph::from_assignments(assignments).expect("star is non-empty")
}

/// Full replication over a complete graph: `n` replicas each storing all
/// `k ≥ 1` registers (the Section 4 clique special case).
///
/// # Panics
///
/// Panics if `n < 1` or `k < 1`.
pub fn clique_full(n: usize, k: usize) -> ShareGraph {
    assert!(n >= 1 && k >= 1);
    let all: Vec<RegisterId> = (0..k as u32).map(RegisterId).collect();
    ShareGraph::from_assignments(vec![all; n]).expect("clique is non-empty")
}

/// Partial replication over a complete share graph: one *unique* register
/// per unordered pair of replicas.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn clique_pairwise(n: usize) -> ShareGraph {
    assert!(n >= 2);
    let mut assignments = vec![Vec::new(); n];
    let mut next = 0u32;
    for i in 0..n {
        for j in i + 1..n {
            assignments[i].push(RegisterId(next));
            assignments[j].push(RegisterId(next));
            next += 1;
        }
    }
    ShareGraph::from_assignments(assignments).expect("clique is non-empty")
}

/// A `rows × cols` grid: one unique register per grid edge.
///
/// # Panics
///
/// Panics if `rows * cols < 2`.
pub fn grid(rows: usize, cols: usize) -> ShareGraph {
    assert!(rows * cols >= 2);
    let id = |r: usize, c: usize| r * cols + c;
    let mut assignments = vec![Vec::new(); rows * cols];
    let mut next = 0u32;
    let mut connect = |a: usize, b: usize, assignments: &mut Vec<Vec<RegisterId>>| {
        assignments[a].push(RegisterId(next));
        assignments[b].push(RegisterId(next));
        next += 1;
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                connect(id(r, c), id(r, c + 1), &mut assignments);
            }
            if r + 1 < rows {
                connect(id(r, c), id(r + 1, c), &mut assignments);
            }
        }
    }
    ShareGraph::from_assignments(assignments).expect("grid is non-empty")
}

/// A uniformly random labelled tree on `n ≥ 2` replicas (via a random Prüfer
/// sequence), one unique register per tree edge.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> ShareGraph {
    assert!(n >= 2, "a tree needs at least 2 replicas");
    if n == 2 {
        return line(2);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut assignments = vec![Vec::new(); n];
    let mut next = 0u32;
    let mut connect = |a: usize, b: usize, assignments: &mut Vec<Vec<RegisterId>>| {
        assignments[a].push(RegisterId(next));
        assignments[b].push(RegisterId(next));
        next += 1;
    };
    let mut degree_mut = degree;
    for &v in &prufer {
        let leaf = (0..n).find(|&u| degree_mut[u] == 1).expect("leaf exists");
        connect(leaf, v, &mut assignments);
        degree_mut[leaf] -= 1;
        degree_mut[v] -= 1;
    }
    let remaining: Vec<usize> = (0..n).filter(|&u| degree_mut[u] == 1).collect();
    connect(remaining[0], remaining[1], &mut assignments);
    ShareGraph::from_assignments(assignments).expect("tree is non-empty")
}

/// A random partially replicated system: `regs` registers, each stored by a
/// uniformly random subset of replicas with size in `2..=max_holders`.
///
/// Not guaranteed connected; callers that require connectivity should check
/// [`ShareGraph::is_connected`] and retry or use [`random_connected`].
pub fn random_share_graph<R: Rng>(
    n: usize,
    regs: usize,
    max_holders: usize,
    rng: &mut R,
) -> ShareGraph {
    assert!(n >= 2 && regs >= 1 && max_holders >= 2);
    let mut assignments = vec![Vec::new(); n];
    let mut ids: Vec<usize> = (0..n).collect();
    for x in 0..regs as u32 {
        let holders = rng.gen_range(2..=max_holders.min(n));
        ids.shuffle(rng);
        for &p in ids.iter().take(holders) {
            assignments[p].push(RegisterId(x));
        }
    }
    ShareGraph::from_assignments(assignments).expect("non-empty")
}

/// Like [`random_share_graph`] but post-processed with extra chain registers
/// so that the result is connected.
pub fn random_connected<R: Rng>(
    n: usize,
    regs: usize,
    max_holders: usize,
    rng: &mut R,
) -> ShareGraph {
    let g = random_share_graph(n, regs, max_holders, rng);
    if g.is_connected() {
        return g;
    }
    // Collect components and stitch them with fresh registers.
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![ReplicaId(start)];
        comp[start] = ncomp;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = ncomp;
                    stack.push(v);
                }
            }
        }
        ncomp += 1;
    }
    let mut assignments: Vec<Vec<RegisterId>> = (0..n)
        .map(|p| g.registers_of(ReplicaId(p)).iter().collect())
        .collect();
    let mut next = g.num_registers() as u32;
    let mut reps: Vec<usize> = Vec::new();
    for c in 0..ncomp {
        reps.push((0..n).find(|&p| comp[p] == c).expect("component rep"));
    }
    for w in reps.windows(2) {
        assignments[w[0]].push(RegisterId(next));
        assignments[w[1]].push(RegisterId(next));
        next += 1;
    }
    ShareGraph::from_assignments(assignments).expect("non-empty")
}

/// A wheel: a ring of `n − 1` rim replicas (unique register per rim edge)
/// plus a hub sharing a unique register with every rim replica. Rich in
/// short loops: every rim edge sits on a triangle through the hub.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> ShareGraph {
    assert!(n >= 4, "a wheel needs a hub and at least 3 rim replicas");
    let rim = n - 1;
    let mut assignments: Vec<Vec<RegisterId>> = vec![Vec::new(); n];
    let mut next = 0u32;
    // Rim edges: replicas 1..n arranged in a cycle.
    for p in 0..rim {
        let a = 1 + p;
        let b = 1 + (p + 1) % rim;
        assignments[a].push(RegisterId(next));
        assignments[b].push(RegisterId(next));
        next += 1;
    }
    // Spokes.
    for p in 1..n {
        assignments[0].push(RegisterId(next));
        assignments[p].push(RegisterId(next));
        next += 1;
    }
    ShareGraph::from_assignments(assignments).expect("wheel is non-empty")
}

/// A complete bipartite share graph `K_{a,b}`: one unique register per
/// (left, right) pair. Dense in 4-cycles, so timestamp graphs grow large —
/// a stress topology for loop search.
///
/// # Panics
///
/// Panics if `a < 1` or `b < 1`.
pub fn complete_bipartite(a: usize, b: usize) -> ShareGraph {
    assert!(a >= 1 && b >= 1);
    let mut assignments: Vec<Vec<RegisterId>> = vec![Vec::new(); a + b];
    let mut next = 0u32;
    for l in 0..a {
        for r in 0..b {
            assignments[l].push(RegisterId(next));
            assignments[a + r].push(RegisterId(next));
            next += 1;
        }
    }
    ShareGraph::from_assignments(assignments).expect("bipartite is non-empty")
}

/// Two rings of sizes `a` and `b` sharing exactly one replica (a figure
/// eight). Loops through the shared replica stay within one ring: a
/// fixture showing that `E_i` of a far replica in ring A never contains
/// ring-B edges.
///
/// The shared replica is replica `0`; ring A uses replicas `0..a`, ring B
/// uses `0` and `a..a+b−1`.
///
/// # Panics
///
/// Panics if `a < 3` or `b < 3`.
pub fn figure_eight(a: usize, b: usize) -> ShareGraph {
    assert!(a >= 3 && b >= 3);
    let n = a + b - 1;
    let mut assignments: Vec<Vec<RegisterId>> = vec![Vec::new(); n];
    let mut next = 0u32;
    let mut connect = |u: usize, v: usize, assignments: &mut Vec<Vec<RegisterId>>| {
        assignments[u].push(RegisterId(next));
        assignments[v].push(RegisterId(next));
        next += 1;
    };
    // Ring A over 0..a.
    for p in 0..a {
        connect(p, (p + 1) % a, &mut assignments);
    }
    // Ring B over 0, a, a+1, …, a+b−2.
    let ring_b: Vec<usize> = std::iter::once(0).chain(a..n).collect();
    for w in 0..ring_b.len() {
        connect(ring_b[w], ring_b[(w + 1) % ring_b.len()], &mut assignments);
    }
    ShareGraph::from_assignments(assignments).expect("figure eight is non-empty")
}

/// The share graph of the paper's Figure 3: `X1 = {x}`, `X2 = {x, y}`,
/// `X3 = {y, z}`, `X4 = {z}` (0-indexed replicas; registers `x, y, z` are
/// `0, 1, 2`). A path graph 1–2–3–4.
pub fn figure3() -> ShareGraph {
    ShareGraph::from_assignments(vec![
        vec![RegisterId(0)],
        vec![RegisterId(0), RegisterId(1)],
        vec![RegisterId(1), RegisterId(2)],
        vec![RegisterId(2)],
    ])
    .expect("figure 3 fixture")
}

/// Registers of the [`figure5`] fixture, in order
/// `a, b, c, d, x, y, z, w = 0..8`.
pub mod figure5_registers {
    use crate::RegisterId;
    /// `a` (private to replica 1).
    pub const A: RegisterId = RegisterId(0);
    /// `b` (private to replica 2).
    pub const B: RegisterId = RegisterId(1);
    /// `c` (private to replica 3).
    pub const C: RegisterId = RegisterId(2);
    /// `d` (private to replica 4).
    pub const D: RegisterId = RegisterId(3);
    /// `x`, shared by replicas 2 and 3.
    pub const X: RegisterId = RegisterId(4);
    /// `y`, shared by replicas 1, 2 and 4.
    pub const Y: RegisterId = RegisterId(5);
    /// `z`, shared by replicas 3 and 4.
    pub const Z: RegisterId = RegisterId(6);
    /// `w`, shared by replicas 1 and 4.
    pub const W: RegisterId = RegisterId(7);
}

/// The share graph of the paper's Figure 5a: `X1 = {a, y, w}`,
/// `X2 = {b, x, y}`, `X3 = {c, x, z}`, `X4 = {d, y, z, w}`.
///
/// Its timestamp graph `G_1` (Figure 5b) contains `e43` but not `e34`.
pub fn figure5() -> ShareGraph {
    use figure5_registers::*;
    ShareGraph::from_assignments(vec![
        vec![A, Y, W],
        vec![B, X, Y],
        vec![C, X, Z],
        vec![D, Y, Z, W],
    ])
    .expect("figure 5 fixture")
}

/// Replica roles and named registers for the Hélary–Milani counterexamples
/// (Figures 6, 8a, 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterexampleRoles {
    /// The observing replica `i`.
    pub i: ReplicaId,
    /// Replica `a1` (on the `i`-to-`k` side).
    pub a1: ReplicaId,
    /// Replica `a2`.
    pub a2: ReplicaId,
    /// Replica `k` (stores `x`).
    pub k: ReplicaId,
    /// Replica `j` (stores `x`).
    pub j: ReplicaId,
    /// Replica `b1` (on the `j`-to-`i` side).
    pub b1: ReplicaId,
    /// Replica `b2`.
    pub b2: ReplicaId,
    /// The register `x` shared by `j` and `k`.
    pub x: RegisterId,
    /// The register `y` shared by `b1`, `b2` and `a1`.
    pub y: RegisterId,
    /// The register `z` shared by `b2`, `a1` and `a2` (counterexample 1
    /// only).
    pub z: Option<RegisterId>,
}

/// Counterexample 1 (Figure 6 / Figure 8a, Appendix A): a 7-cycle
/// `j–b1–b2–i–a1–a2–k–j` where `x ∈ X_j ∩ X_k`, `y` is shared by
/// `{b1, b2, a1}` and `z` by `{b2, a1, a2}`; all other edge labels unique.
///
/// The loop `(j, b1, b2, i, a1, a2, k)` is a *minimal x-hoop* per Hélary &
/// Milani, so their claim forces `i` to track `x`-updates by `j`/`k` — yet
/// no `(i, e_jk)`- or `(i, e_kj)`-loop exists, so Theorem 8 does not.
pub fn counterexample1() -> (ShareGraph, CounterexampleRoles) {
    // Indices: i=0, a1=1, a2=2, k=3, j=4, b1=5, b2=6.
    // Registers: x=0, y=1, z=2, u1(j·b1)=3, u2(b2·i)=4, u3(i·a1)=5,
    // u4(a2·k)=6.
    let g = ShareGraph::from_assignments(vec![
        /* i  */ vec![RegisterId(4), RegisterId(5)],
        /* a1 */ vec![RegisterId(5), RegisterId(1), RegisterId(2)],
        /* a2 */ vec![RegisterId(2), RegisterId(6)],
        /* k  */ vec![RegisterId(6), RegisterId(0)],
        /* j  */ vec![RegisterId(0), RegisterId(3)],
        /* b1 */ vec![RegisterId(3), RegisterId(1)],
        /* b2 */ vec![RegisterId(1), RegisterId(2), RegisterId(4)],
    ])
    .expect("counterexample 1 fixture");
    let roles = CounterexampleRoles {
        i: ReplicaId(0),
        a1: ReplicaId(1),
        a2: ReplicaId(2),
        k: ReplicaId(3),
        j: ReplicaId(4),
        b1: ReplicaId(5),
        b2: ReplicaId(6),
        x: RegisterId(0),
        y: RegisterId(1),
        z: Some(RegisterId(2)),
    };
    (g, roles)
}

/// Counterexample 2 (Figure 8b, Appendix A): the same 7-cycle but only `y`
/// is triply shared (`{b1, b2, a1}`); the `a1–a2` edge gets a unique
/// register.
///
/// Under the *modified* minimal-hoop definition the hoop through `i` is not
/// minimal (label `y` is stored by three hoop replicas), so `i` would not
/// track `x` — yet an `(i, e_kj)`-loop exists and Theorem 8 requires
/// tracking it.
pub fn counterexample2() -> (ShareGraph, CounterexampleRoles) {
    // Indices as in counterexample 1.
    // Registers: x=0, y=1, u1(j·b1)=2, u2(b2·i)=3, u3(i·a1)=4, u4(a2·k)=5,
    // u5(a1·a2)=6.
    let g = ShareGraph::from_assignments(vec![
        /* i  */ vec![RegisterId(3), RegisterId(4)],
        /* a1 */ vec![RegisterId(4), RegisterId(1), RegisterId(6)],
        /* a2 */ vec![RegisterId(6), RegisterId(5)],
        /* k  */ vec![RegisterId(5), RegisterId(0)],
        /* j  */ vec![RegisterId(0), RegisterId(2)],
        /* b1 */ vec![RegisterId(2), RegisterId(1)],
        /* b2 */ vec![RegisterId(1), RegisterId(3)],
    ])
    .expect("counterexample 2 fixture");
    let roles = CounterexampleRoles {
        i: ReplicaId(0),
        a1: ReplicaId(1),
        a2: ReplicaId(2),
        k: ReplicaId(3),
        j: ReplicaId(4),
        b1: ReplicaId(5),
        b2: ReplicaId(6),
        x: RegisterId(0),
        y: RegisterId(1),
        z: None,
    };
    (g, roles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ring_structure() {
        let g = ring(6);
        assert_eq!(g.num_replicas(), 6);
        assert_eq!(g.num_registers(), 6);
        for p in 0..6 {
            assert_eq!(g.degree(ReplicaId(p)), 2, "ring degree");
        }
        assert!(!g.is_forest());
        assert!(g.is_connected());
    }

    #[test]
    fn line_and_star_are_trees() {
        assert!(line(7).is_forest());
        assert!(line(7).is_connected());
        let s = star(5);
        assert!(s.is_forest());
        assert_eq!(s.degree(ReplicaId(0)), 4);
        for p in 1..5 {
            assert_eq!(s.degree(ReplicaId(p)), 1);
        }
    }

    #[test]
    fn clique_full_is_full_replication() {
        let g = clique_full(4, 3);
        assert!(g.is_full_replication());
        assert_eq!(g.num_directed_edges(), 12);
    }

    #[test]
    fn clique_pairwise_is_complete_but_partial() {
        let g = clique_pairwise(4);
        assert!(!g.is_full_replication());
        assert_eq!(g.num_directed_edges(), 12);
        assert_eq!(g.num_registers(), 6);
        for e in g.directed_edges() {
            assert_eq!(g.shared_on(e).len(), 1, "one register per pair");
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_replicas(), 12);
        // 3*3 horizontal + 2*4 vertical edges.
        assert_eq!(g.num_registers(), 9 + 8);
        assert!(g.is_connected());
        assert!(!g.is_forest());
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for n in 2..12 {
            let g = random_tree(n, &mut rng);
            assert!(g.is_forest(), "n={n}");
            assert!(g.is_connected(), "n={n}");
            assert_eq!(g.num_registers(), n - 1);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for seed in 0..20 {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let g = random_connected(8, 6, 3, &mut r);
            assert!(g.is_connected(), "seed={seed}");
            let _ = &mut rng;
        }
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(6);
        assert_eq!(g.num_replicas(), 6);
        assert_eq!(g.degree(ReplicaId(0)), 5, "hub touches every rim replica");
        for p in 1..6 {
            assert_eq!(g.degree(ReplicaId(p)), 3, "rim: two rim edges + spoke");
        }
        assert!(g.is_connected());
        assert!(!g.is_forest());
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_replicas(), 5);
        assert_eq!(g.num_registers(), 6);
        for l in 0..2 {
            assert_eq!(g.degree(ReplicaId(l)), 3);
        }
        for r in 2..5 {
            assert_eq!(g.degree(ReplicaId(r)), 2);
        }
        assert!(
            !g.are_adjacent(ReplicaId(0), ReplicaId(1)),
            "no intra-side edges"
        );
    }

    #[test]
    fn figure_eight_structure() {
        let g = figure_eight(3, 4);
        assert_eq!(g.num_replicas(), 6);
        assert_eq!(
            g.degree(ReplicaId(0)),
            4,
            "shared replica sits on both rings"
        );
        assert!(g.is_connected());
        // A replica deep in ring A must not track ring-B edges: every loop
        // through it stays within ring A (ring B edges cannot be on a simple
        // loop through a non-shared ring-A vertex).
        let t1 = crate::TimestampGraph::compute(&g, ReplicaId(1));
        for e in t1.loop_edges() {
            assert!(
                e.from.index() < 3 && e.to.index() < 3,
                "ring-B edge {e} leaked into ring-A replica's timestamp graph"
            );
        }
    }

    #[test]
    fn figure3_matches_paper() {
        let g = figure3();
        assert_eq!(g.shared(ReplicaId(1), ReplicaId(2)).len(), 1);
        assert!(g.shared(ReplicaId(0), ReplicaId(3)).is_empty());
    }

    #[test]
    fn figure5_labels_match_paper() {
        use figure5_registers::*;
        let g = figure5();
        assert_eq!(
            g.shared(ReplicaId(2), ReplicaId(3))
                .iter()
                .collect::<Vec<_>>(),
            vec![Z]
        );
        assert_eq!(
            g.shared(ReplicaId(0), ReplicaId(1))
                .iter()
                .collect::<Vec<_>>(),
            vec![Y]
        );
        assert!(g.shared(ReplicaId(0), ReplicaId(3)).contains(W));
        assert!(!g.are_adjacent(ReplicaId(0), ReplicaId(2)));
    }

    #[test]
    fn counterexample1_structure() {
        let (g, r) = counterexample1();
        // The 7-cycle plus chords (b1,a1), (b2,a1), (b2,a2).
        assert!(g.are_adjacent(r.j, r.k));
        assert!(g.are_adjacent(r.b1, r.a1));
        assert!(g.are_adjacent(r.b2, r.a1));
        assert!(g.are_adjacent(r.b2, r.a2));
        assert!(!g.are_adjacent(r.i, r.j));
        assert!(!g.are_adjacent(r.i, r.k));
        // Exactly two edges labelled exactly {y}: (b1,b2) and (b1,a1).
        let y_only: Vec<_> = g
            .undirected_edges()
            .filter(|&e| {
                let s = g.shared_on(e);
                s.len() == 1 && s.contains(r.y)
            })
            .collect();
        assert_eq!(
            y_only.len(),
            2,
            "paper: two edges labelled y, got {y_only:?}"
        );
    }

    #[test]
    fn counterexample2_structure() {
        let (g, r) = counterexample2();
        assert!(g.are_adjacent(r.j, r.k));
        assert!(g.are_adjacent(r.b1, r.a1));
        assert!(g.are_adjacent(r.b2, r.a1));
        assert!(
            !g.are_adjacent(r.b2, r.a2),
            "no z chord in counterexample 2"
        );
        assert_eq!(g.holders(r.y).len(), 3);
    }
}
