//! Hélary & Milani's `x`-hoops and minimal hoops (Definitions 9/10,
//! restated as 17/18 in the appendix, plus the modified Definition 20).
//!
//! The paper corrects a claim of Hélary & Milani: *"a replica has to
//! transmit some information about a register x iff the replica stores x or
//! belongs to a minimal x-hoop"* (Lemma 19). This module implements both the
//! original and the modified minimal-hoop definitions faithfully so that the
//! two counterexamples of Appendix A can be demonstrated:
//!
//! * Counterexample 1: the original criterion *over*-approximates — it makes
//!   replica `i` track `x` although no `(i, e_jk)`/`(i, e_kj)`-loop exists.
//! * Counterexample 2: the modified criterion *under*-approximates — it lets
//!   `i` forget `x` although an `(i, e_kj)`-loop exists (so causal
//!   consistency can actually be violated; see the `prcc-baselines` crate
//!   for the executable demonstration).

use crate::{RegSet, RegisterId, ReplicaId, ShareGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An `x`-hoop (Definition 9): a path between two holders of `x` whose
/// interior avoids `C(x)` and whose every edge shares some register `≠ x`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hoop {
    /// The register the hoop is about.
    pub x: RegisterId,
    /// The path `r_a = r_0, r_1, …, r_k = r_b`; endpoints store `x`,
    /// interior vertices do not.
    pub path: Vec<ReplicaId>,
}

impl Hoop {
    /// Validates the hoop against Definition 9.
    pub fn is_valid(&self, g: &ShareGraph) -> bool {
        if self.path.len() < 2 {
            return false;
        }
        let (ra, rb) = (self.path[0], *self.path.last().unwrap());
        if !g.stores(ra, self.x) || !g.stores(rb, self.x) {
            return false;
        }
        // Simple path.
        let distinct: BTreeSet<_> = self.path.iter().collect();
        if distinct.len() != self.path.len() {
            return false;
        }
        for (h, w) in self.path.windows(2).enumerate() {
            let (u, v) = (w[0], w[1]);
            if !g.are_adjacent(u, v) {
                return false;
            }
            // Every edge must be labellable with some register ≠ x.
            let mut s = g.shared(u, v).clone();
            s.remove(self.x);
            if s.is_empty() {
                return false;
            }
            // Interior vertices avoid C(x).
            if h > 0 && g.stores(u, self.x) {
                return false;
            }
        }
        true
    }

    /// Candidate label set for hoop edge `h` under the *original* minimal
    /// hoop definition: registers shared on the edge, except `x` and
    /// anything stored by both endpoints `r_a` and `r_b`.
    fn candidates_original(&self, g: &ShareGraph, h: usize) -> RegSet {
        let (ra, rb) = (self.path[0], *self.path.last().unwrap());
        let mut s = g.shared(self.path[h], self.path[h + 1]).clone();
        s.remove(self.x);
        let both = g.shared(ra, rb);
        s.difference_with(both);
        s
    }

    /// Candidate label set under the *modified* definition (Definition 20):
    /// additionally, the label must be stored by at most two replicas *of
    /// the hoop*.
    fn candidates_modified(&self, g: &ShareGraph, h: usize) -> RegSet {
        let mut s = self.candidates_original(g, h);
        let mut drop = Vec::new();
        for reg in s.iter() {
            let holders_in_hoop = self.path.iter().filter(|&&r| g.stores(r, reg)).count();
            if holders_in_hoop > 2 {
                drop.push(reg);
            }
        }
        for reg in drop {
            s.remove(reg);
        }
        s
    }

    /// True if the hoop is minimal per the *original* Definition 10/18:
    /// the edges admit pairwise-distinct labels, none shared by both
    /// endpoints.
    pub fn is_minimal(&self, g: &ShareGraph) -> bool {
        self.has_distinct_labelling(g, false)
    }

    /// True if the hoop is minimal per the *modified* Definition 20: the
    /// edges admit pairwise-distinct labels, none stored by more than two
    /// hoop replicas.
    pub fn is_minimal_modified(&self, g: &ShareGraph) -> bool {
        self.has_distinct_labelling(g, true)
    }

    /// Decides whether a system of distinct representatives exists for the
    /// per-edge candidate label sets (bipartite matching, augmenting paths).
    fn has_distinct_labelling(&self, g: &ShareGraph, modified: bool) -> bool {
        let k = self.path.len() - 1;
        let cands: Vec<Vec<RegisterId>> = (0..k)
            .map(|h| {
                let s = if modified {
                    self.candidates_modified(g, h)
                } else {
                    self.candidates_original(g, h)
                };
                s.iter().collect()
            })
            .collect();
        // matched[reg] = edge index currently using reg.
        let mut matched: std::collections::HashMap<RegisterId, usize> =
            std::collections::HashMap::new();
        fn augment(
            h: usize,
            cands: &[Vec<RegisterId>],
            matched: &mut std::collections::HashMap<RegisterId, usize>,
            visited: &mut BTreeSet<RegisterId>,
        ) -> bool {
            for &reg in &cands[h] {
                if visited.contains(&reg) {
                    continue;
                }
                visited.insert(reg);
                let prev = matched.get(&reg).copied();
                match prev {
                    None => {
                        matched.insert(reg, h);
                        return true;
                    }
                    Some(other) => {
                        if augment(other, cands, matched, visited) {
                            matched.insert(reg, h);
                            return true;
                        }
                    }
                }
            }
            false
        }
        for h in 0..k {
            let mut visited = BTreeSet::new();
            if !augment(h, &cands, &mut matched, &mut visited) {
                return false;
            }
        }
        true
    }

    /// The interior replicas (those strictly between the endpoints).
    pub fn interior(&self) -> &[ReplicaId] {
        &self.path[1..self.path.len() - 1]
    }
}

impl fmt::Display for Hoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-hoop(", self.x)?;
        for (n, r) in self.path.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Enumerates all `x`-hoops in `g`, up to `cap` results (DFS over simple
/// paths between holders of `x` with non-holder interiors).
pub fn enumerate_hoops(g: &ShareGraph, x: RegisterId, cap: usize) -> Vec<Hoop> {
    let holders = g.holders(x).to_vec();
    let mut out = Vec::new();
    for (ai, &ra) in holders.iter().enumerate() {
        for &rb in &holders[ai + 1..] {
            let mut path = vec![ra];
            let mut on = vec![false; g.num_replicas()];
            on[ra.index()] = true;
            dfs_hoop(g, x, rb, &mut path, &mut on, &mut out, cap);
            if out.len() >= cap {
                return out;
            }
        }
    }
    out
}

fn dfs_hoop(
    g: &ShareGraph,
    x: RegisterId,
    target: ReplicaId,
    path: &mut Vec<ReplicaId>,
    on: &mut [bool],
    out: &mut Vec<Hoop>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    let u = *path.last().unwrap();
    for &v in g.neighbors(u) {
        if on[v.index()] {
            continue;
        }
        // The edge must carry a label ≠ x.
        let s = g.shared(u, v);
        if s.len() == 1 && s.contains(x) {
            continue;
        }
        if v == target {
            path.push(v);
            let hoop = Hoop {
                x,
                path: path.clone(),
            };
            debug_assert!(hoop.is_valid(g), "enumerated hoop must be valid");
            out.push(hoop);
            path.pop();
            if out.len() >= cap {
                return;
            }
            continue;
        }
        // Interior vertices must not store x.
        if g.stores(v, x) {
            continue;
        }
        path.push(v);
        on[v.index()] = true;
        dfs_hoop(g, x, target, path, on, out, cap);
        on[v.index()] = false;
        path.pop();
    }
}

/// Hélary & Milani's criterion with the *original* minimal-hoop definition:
/// replica `i` must transmit information about `x` iff it stores `x` or lies
/// on some minimal `x`-hoop.
pub fn must_track_original(g: &ShareGraph, i: ReplicaId, x: RegisterId) -> bool {
    if g.stores(i, x) {
        return true;
    }
    enumerate_hoops(g, x, 100_000)
        .iter()
        .any(|h| h.interior().contains(&i) && h.is_minimal(g))
}

/// The same criterion with the *modified* minimal-hoop definition
/// (Definition 20).
pub fn must_track_modified(g: &ShareGraph, i: ReplicaId, x: RegisterId) -> bool {
    if g.stores(i, x) {
        return true;
    }
    enumerate_hoops(g, x, 100_000)
        .iter()
        .any(|h| h.interior().contains(&i) && h.is_minimal_modified(g))
}

/// All registers replica `i` must track per the original criterion.
pub fn tracked_registers_original(g: &ShareGraph, i: ReplicaId) -> RegSet {
    let mut s = RegSet::new(g.num_registers());
    for x in g.registers() {
        if must_track_original(g, i, x) {
            s.insert(x);
        }
    }
    s
}

/// All registers replica `i` must track per the modified criterion.
pub fn tracked_registers_modified(g: &ShareGraph, i: ReplicaId) -> RegSet {
    let mut s = RegSet::new(g.num_registers());
    for x in g.registers() {
        if must_track_modified(g, i, x) {
            s.insert(x);
        }
    }
    s
}

/// The register set replica `i` tracks under *this paper's* criterion: `x`
/// is tracked iff `i` stores it or some tracked edge `e_jk ∈ E_i` carries it
/// (`x ∈ X_jk`).
pub fn tracked_registers_loops(g: &ShareGraph, tsg: &crate::TimestampGraph) -> RegSet {
    let i = tsg.replica();
    let mut s = g.registers_of(i).clone();
    for e in tsg.edges() {
        s.union_with(g.shared_on(e));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use crate::TimestampGraph;

    #[test]
    fn counterexample1_hoop_is_minimal_original() {
        let (g, r) = topologies::counterexample1();
        let hoop = Hoop {
            x: r.x,
            path: vec![r.j, r.b1, r.b2, r.i, r.a1, r.a2, r.k],
        };
        assert!(hoop.is_valid(&g));
        assert!(
            hoop.is_minimal(&g),
            "paper: the 7-cycle is a minimal x-hoop under the original definition"
        );
    }

    #[test]
    fn counterexample1_original_criterion_overapproximates() {
        let (g, r) = topologies::counterexample1();
        // Original HM criterion says i must track x…
        assert!(must_track_original(&g, r.i, r.x));
        // …but the loop-based necessary condition does not require it.
        let gi = TimestampGraph::compute(&g, r.i);
        let ours = tracked_registers_loops(&g, &gi);
        assert!(!ours.contains(r.x), "Theorem 8 does not force i to track x");
    }

    #[test]
    fn counterexample2_hoop_not_minimal_modified() {
        let (g, r) = topologies::counterexample2();
        let hoop = Hoop {
            x: r.x,
            path: vec![r.j, r.b1, r.b2, r.i, r.a1, r.a2, r.k],
        };
        assert!(hoop.is_valid(&g));
        assert!(hoop.is_minimal(&g), "still minimal under the original rule");
        assert!(
            !hoop.is_minimal_modified(&g),
            "label y is stored by three hoop replicas, so not minimal-modified"
        );
    }

    #[test]
    fn counterexample2_modified_criterion_underapproximates() {
        let (g, r) = topologies::counterexample2();
        // Modified HM criterion: i need not track x…
        assert!(!must_track_modified(&g, r.i, r.x));
        // …but the loop criterion requires tracking e_kj, which carries x.
        let gi = TimestampGraph::compute(&g, r.i);
        let ours = tracked_registers_loops(&g, &gi);
        assert!(ours.contains(r.x), "Theorem 8 forces i to track x via e_kj");
    }

    #[test]
    fn hoop_enumeration_on_ring() {
        let g = topologies::ring(5);
        // Register 0 is shared by replicas 0 and 1; the only x-hoop is the
        // long way around the ring.
        let hoops = enumerate_hoops(&g, RegisterId(0), 100);
        assert_eq!(hoops.len(), 1);
        assert_eq!(hoops[0].path.len(), 5);
        assert!(hoops[0].is_minimal(&g));
        assert!(hoops[0].is_minimal_modified(&g));
    }

    #[test]
    fn no_hoops_in_trees() {
        let g = topologies::line(5);
        for x in g.registers() {
            assert!(enumerate_hoops(&g, x, 100).is_empty());
        }
    }

    #[test]
    fn storing_replica_always_tracks() {
        let g = topologies::figure5();
        for i in g.replicas() {
            for x in g.registers_of(i).iter() {
                assert!(must_track_original(&g, i, x));
                assert!(must_track_modified(&g, i, x));
            }
        }
    }

    #[test]
    fn invalid_hoops_rejected() {
        let (g, r) = topologies::counterexample1();
        // Endpoint does not store x.
        let h = Hoop {
            x: r.x,
            path: vec![r.b1, r.b2, r.i],
        };
        assert!(!h.is_valid(&g));
        // Too short.
        let h2 = Hoop {
            x: r.x,
            path: vec![r.j],
        };
        assert!(!h2.is_valid(&g));
        // Interior stores x: direct j–k "hoop" with interior k impossible;
        // construct path (j, k) — valid length-1 hoop? The j–k edge's only
        // label is x, so it cannot be labelled ≠ x.
        let h3 = Hoop {
            x: r.x,
            path: vec![r.j, r.k],
        };
        assert!(!h3.is_valid(&g));
    }

    #[test]
    fn hoop_display() {
        let (_, r) = topologies::counterexample1();
        let h = Hoop {
            x: r.x,
            path: vec![r.j, r.b1],
        };
        assert!(h.to_string().contains("hoop"));
    }

    #[test]
    fn ring_every_interior_replica_tracks_everything() {
        // On a ring the single hoop per register is minimal, so HM and the
        // loop criterion agree: everyone tracks everything.
        let g = topologies::ring(4);
        for i in g.replicas() {
            let hm = tracked_registers_original(&g, i);
            let gi = TimestampGraph::compute(&g, i);
            let ours = tracked_registers_loops(&g, &gi);
            assert_eq!(hm, ours, "replica {i}");
            assert_eq!(hm.len(), g.num_registers());
        }
    }
}
