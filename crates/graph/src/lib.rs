//! Share graphs, `(i, e_jk)`-loops and timestamp graphs for partially
//! replicated causally consistent shared memory.
//!
//! This crate implements the combinatorial core of Xiang & Vaidya,
//! *"Partially Replicated Causally Consistent Shared Memory: Lower Bounds and
//! An Algorithm"* (PODC 2019):
//!
//! * [`ShareGraph`] — the share graph `G` of Definition 3: vertices are
//!   replicas, a (bidirectional) pair of directed edges connects replicas
//!   `i, j` whenever they store a common register (`X_ij ≠ ∅`).
//! * [`loops`] — detection of `(i, e_jk)`-loops (Definition 4), the loops in
//!   the share graph along which a causal dependency can propagate back to a
//!   replica `i` without touching the intermediate replicas' state.
//! * [`TimestampGraph`] — the timestamp graph `G_i` (Definition 5): the set
//!   of directed edges that replica `i` *must and need only* track in its
//!   timestamp (Theorem 8 + Section 3.3).
//! * [`hoops`] — Hélary & Milani's `x`-hoops and minimal hoops (original and
//!   modified definitions), implemented so the paper's counterexamples to
//!   their claim can be reproduced.
//! * [`augmented`] — the client-server extension: augmented share graphs,
//!   augmented `(i, e_jk)`-loops and augmented timestamp graphs
//!   (Definitions 16, 27, 28).
//! * [`PartitionMap`] — sharding of the register space for deployments: a
//!   global key universe split into per-partition key ranges, each
//!   partition an independent share-graph instance whose replica roles are
//!   placed onto physical nodes.
//! * [`topologies`] — generators for the share graphs used throughout the
//!   paper and the experiment suite (rings, trees, cliques, …, plus the
//!   exact fixtures of Figures 3, 5, 6, 8a, 8b and 13).
//! * [`analysis`] — timestamp-compression analysis (Section 5 / Appendix D):
//!   ranks of edge–register incidence matrices, independent counter counts.
//!
//! # Example
//!
//! ```
//! use prcc_graph::{ShareGraphBuilder, RegisterId, ReplicaId, TimestampGraph, Edge};
//!
//! // The running example of Section 3 (Figure 5a).
//! let [a, b, c, d, x, y, z, w] = [0, 1, 2, 3, 4, 5, 6, 7].map(RegisterId);
//! let g = ShareGraphBuilder::new()
//!     .replica([a, y, w])
//!     .replica([b, x, y])
//!     .replica([c, x, z])
//!     .replica([d, y, z, w])
//!     .build()
//!     .expect("valid share graph");
//!
//! let g1 = TimestampGraph::compute(&g, ReplicaId(0));
//! // e43 is tracked by replica 1, e34 is not (paper, Section 3 example;
//! // replicas are 0-indexed here).
//! assert!(g1.contains(Edge::new(ReplicaId(3), ReplicaId(2))));
//! assert!(!g1.contains(Edge::new(ReplicaId(2), ReplicaId(3))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod augmented;
pub mod bitset;
pub mod dot;
mod error;
pub mod hoops;
mod ids;
pub mod loops;
mod partition;
mod share_graph;
mod timestamp_graph;
pub mod topologies;

pub use augmented::{AugmentedShareGraph, ClientId};
pub use bitset::RegSet;
pub use error::GraphError;
pub use ids::{edge, Edge, RegisterId, ReplicaId};
pub use partition::{PartitionId, PartitionMap};
pub use share_graph::{ShareGraph, ShareGraphBuilder};
pub use timestamp_graph::TimestampGraph;
