//! `(i, e_jk)`-loop detection (Definition 4).
//!
//! Given replica `i` and a directed share-graph edge `e_jk` (with
//! `j ≠ i ≠ k`), an `(i, e_jk)`-loop is a simple loop
//!
//! ```text
//! (i, l_1, l_2, …, l_s = k, j = r_1, r_2, …, r_t, i)      s ≥ 1, t ≥ 1
//! ```
//!
//! in the share graph `G` (with `r_{t+1} := i`) such that
//!
//! 1. `X_jk − (X_{l_1} ∪ … ∪ X_{l_{s−1}}) ≠ ∅`,
//! 2. `X_{j r_2} − (X_{l_1} ∪ … ∪ X_{l_{s−1}}) ≠ ∅`, and
//! 3. for `2 ≤ q ≤ t`: `X_{r_q r_{q+1}} − (X_{l_1} ∪ … ∪ X_{l_s}) ≠ ∅`.
//!
//! Intuition (paper, Section 3): the loop witnesses a chain of updates
//! `u ↪ u_1 ↪ … ↪ u_t` that carries a dependency on a `j→k` update all the
//! way around to `i` *without* any of the intermediate replicas
//! `l_1 … l_{s−1}` ever observing it — so `i` itself must track the `e_jk`
//! counter to re-establish the dependency when forwarding along the `l`
//! chain. The existence of such a loop is exactly what forces `e_jk` into
//! `i`'s timestamp graph (Theorem 8), and tracking those edges is also
//! sufficient (Section 3.3).
//!
//! # Algorithm
//!
//! The search enumerates the `l`-chain (simple paths `i → k` avoiding `j`)
//! by DFS, maintaining the running union `A = X_{l_1} ∪ … ∪ X_{l_{s−1}}`.
//! Because `A` only grows along a path, any prefix with `X_jk ⊆ A` can be
//! pruned (condition 1 can never be repaired). For each complete `l`-chain,
//! the `r`-chain reduces to a *reachability* question: beyond the first hop
//! (which is checked against `A`, condition 2), every edge of the `r`-chain
//! must satisfy the same filter `X_{r_q r_{q+1}} − B ≠ ∅` with
//! `B = A ∪ X_k` fixed, so a BFS over the filtered subgraph (avoiding the
//! `l`-chain vertices) decides existence. Worst case remains exponential in
//! the number of simple `i→k` paths, which is fine at the paper's scale;
//! tests cross-check structured topologies against closed forms.

use crate::{Edge, RegSet, ReplicaId, ShareGraph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A concrete `(i, e_jk)`-loop, returned as a witness by [`find_loop`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopWitness {
    /// The replica `i` whose timestamp graph is being computed.
    pub replica: ReplicaId,
    /// The tracked edge `e_jk`.
    pub edge: Edge,
    /// `l_1, …, l_s` with `l_s = k`.
    pub l_chain: Vec<ReplicaId>,
    /// `r_1, …, r_t` with `r_1 = j`.
    pub r_chain: Vec<ReplicaId>,
}

impl LoopWitness {
    /// The full loop as a vertex sequence `i, l_1, …, l_s, r_1, …, r_t`
    /// (closing back to `i`).
    pub fn cycle(&self) -> Vec<ReplicaId> {
        let mut v = Vec::with_capacity(1 + self.l_chain.len() + self.r_chain.len());
        v.push(self.replica);
        v.extend_from_slice(&self.l_chain);
        v.extend_from_slice(&self.r_chain);
        v
    }

    /// Independently validates the witness against Definition 4.
    ///
    /// This is deliberately a from-scratch re-check (adjacency, simplicity
    /// and all three register conditions) so property tests can use it as an
    /// oracle for [`find_loop`].
    pub fn verify(&self, g: &ShareGraph) -> bool {
        let i = self.replica;
        let (j, k) = (self.edge.from, self.edge.to);
        if i == j || i == k || j == k {
            return false;
        }
        let (s, t) = (self.l_chain.len(), self.r_chain.len());
        if s < 1 || t < 1 {
            return false;
        }
        if *self.l_chain.last().unwrap() != k || self.r_chain[0] != j {
            return false;
        }
        // Simplicity: all loop vertices distinct.
        let cycle = self.cycle();
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != cycle.len() {
            return false;
        }
        // All consecutive pairs (wrapping) are share-graph edges.
        for w in 0..cycle.len() {
            let u = cycle[w];
            let v = cycle[(w + 1) % cycle.len()];
            if !g.are_adjacent(u, v) {
                return false;
            }
        }
        // Condition sets.
        let a = g.union_registers(self.l_chain[..s - 1].iter().copied());
        let b = a.union(g.registers_of(k));
        // (1)
        if g.shared(j, k).is_subset(&a) {
            return false;
        }
        // (2): r_2 is the next vertex after j, i.e. r_chain[1] or i if t = 1.
        let r2 = if t >= 2 { self.r_chain[1] } else { i };
        if g.shared(j, r2).is_subset(&a) {
            return false;
        }
        // (3): for 2 ≤ q ≤ t, with r_{t+1} = i.
        for q in 1..t {
            let rq = self.r_chain[q];
            let rq1 = if q + 1 < t { self.r_chain[q + 1] } else { i };
            if g.shared(rq, rq1).is_subset(&b) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for LoopWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})-loop: ", self.replica, self.edge)?;
        let cycle = self.cycle();
        for (n, v) in cycle.iter().enumerate() {
            if n > 0 {
                write!(f, "→")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "→{}", self.replica)
    }
}

/// True if an `(i, e_jk)`-loop exists in `g` (Definition 4).
///
/// Returns `false` whenever the arguments are degenerate (`j = i`, `k = i`,
/// or `e_jk ∉ E`): Definition 5 handles incident edges separately.
pub fn has_loop(g: &ShareGraph, i: ReplicaId, e: Edge) -> bool {
    find_loop(g, i, e).is_some()
}

/// Finds an `(i, e_jk)`-loop witness if one exists.
pub fn find_loop(g: &ShareGraph, i: ReplicaId, e: Edge) -> Option<LoopWitness> {
    find_loop_bounded(g, i, e, usize::MAX)
}

/// Like [`find_loop`] but only considers loops with at most `max_edges`
/// edges (cycle length `s + t + 1 ≤ max_edges`).
///
/// This implements the "sacrificing causality" relaxation of Appendix D:
/// tracking only edges witnessed by loops of at most `l + 1` edges stays
/// safe under loose synchrony (one-hop messages beat `l`-hop chains) but can
/// violate causality under full asynchrony.
pub fn find_loop_bounded(
    g: &ShareGraph,
    i: ReplicaId,
    e: Edge,
    max_edges: usize,
) -> Option<LoopWitness> {
    let (j, k) = (e.from, e.to);
    if i == j || i == k || j == k || !g.has_edge(e) {
        return None;
    }
    if max_edges < 3 {
        return None;
    }
    let mut search = LoopSearch {
        g,
        i,
        j,
        k,
        xjk: g.shared(j, k).clone(),
        on_path: vec![false; g.num_replicas()],
        l_chain: Vec::new(),
        client_edges: None,
        max_edges,
    };
    search.on_path[i.index()] = true;
    let a = RegSet::new(g.num_registers());
    search.dfs_l(i, &a).map(|(l_chain, r_chain)| LoopWitness {
        replica: i,
        edge: e,
        l_chain,
        r_chain,
    })
}

/// Adjacency predicate for the client-server extension: an extra set of
/// "client edges" usable by the loop besides the share-graph edges.
pub(crate) type ClientEdges<'a> = &'a dyn Fn(ReplicaId, ReplicaId) -> bool;

/// Finds an *augmented* `(i, e_jk)`-loop (Definition 27): the loop may use
/// client edges anywhere, and conditions 2–3 are satisfied on an edge that
/// is a client edge regardless of register sets.
///
/// `e_jk` itself must still be a share-graph edge.
pub(crate) fn find_loop_augmented(
    g: &ShareGraph,
    i: ReplicaId,
    e: Edge,
    client_edges: ClientEdges<'_>,
) -> Option<LoopWitness> {
    let (j, k) = (e.from, e.to);
    if i == j || i == k || j == k || !g.has_edge(e) {
        return None;
    }
    let mut search = LoopSearch {
        g,
        i,
        j,
        k,
        xjk: g.shared(j, k).clone(),
        on_path: vec![false; g.num_replicas()],
        l_chain: Vec::new(),
        client_edges: Some(client_edges),
        max_edges: usize::MAX,
    };
    search.on_path[i.index()] = true;
    let a = RegSet::new(g.num_registers());
    search.dfs_l(i, &a).map(|(l_chain, r_chain)| LoopWitness {
        replica: i,
        edge: e,
        l_chain,
        r_chain,
    })
}

struct LoopSearch<'a> {
    g: &'a ShareGraph,
    i: ReplicaId,
    j: ReplicaId,
    k: ReplicaId,
    xjk: RegSet,
    /// Vertices currently on the l-chain (plus `i`).
    on_path: Vec<bool>,
    l_chain: Vec<ReplicaId>,
    /// When set, augmented semantics (Definition 27).
    client_edges: Option<ClientEdges<'a>>,
    /// Cap on total cycle edges (`s + t + 1`).
    max_edges: usize,
}

impl LoopSearch<'_> {
    fn connected(&self, u: ReplicaId, v: ReplicaId) -> bool {
        self.g.are_adjacent(u, v) || self.client_edges.map(|ce| ce(u, v)).unwrap_or(false)
    }

    /// Successors of `u` in the (possibly augmented) graph.
    fn successors(&self, u: ReplicaId) -> Vec<ReplicaId> {
        match self.client_edges {
            None => self.g.neighbors(u).to_vec(),
            Some(ce) => {
                let mut out: Vec<ReplicaId> = self.g.neighbors(u).to_vec();
                for v in self.g.replicas() {
                    if v != u && !self.g.are_adjacent(u, v) && ce(u, v) {
                        out.push(v);
                    }
                }
                out
            }
        }
    }

    /// Condition-2/3 edge filter: share registers outside `excl`, or (in the
    /// augmented case) a client edge.
    fn r_edge_ok(&self, u: ReplicaId, v: ReplicaId, excl: &RegSet) -> bool {
        if self.g.are_adjacent(u, v) && !self.g.shared(u, v).is_subset(excl) {
            return true;
        }
        self.client_edges.map(|ce| ce(u, v)).unwrap_or(false)
    }

    /// Extends the l-chain from `u`; `a` is the union of `X_l` over chain
    /// vertices *excluding* a future `k` (i.e. over `l_1 … l_{cur}`).
    ///
    /// Returns `(l_chain, r_chain)` on success.
    fn dfs_l(&mut self, u: ReplicaId, a: &RegSet) -> Option<(Vec<ReplicaId>, Vec<ReplicaId>)> {
        // Prune: condition 1 is monotone in `a`.
        if self.xjk.is_subset(a) {
            return None;
        }
        // Prune: even closing at k right now and taking the direct j→i hop
        // needs l_chain.len() + 3 edges.
        if self.l_chain.len() + 3 > self.max_edges {
            return None;
        }
        // Try closing the l-chain at k.
        if self.connected(u, self.k) && !self.on_path[self.k.index()] {
            self.l_chain.push(self.k);
            self.on_path[self.k.index()] = true;
            if let Some(r_chain) = self.search_r(a) {
                let l_chain = self.l_chain.clone();
                self.on_path[self.k.index()] = false;
                self.l_chain.pop();
                return Some((l_chain, r_chain));
            }
            self.on_path[self.k.index()] = false;
            self.l_chain.pop();
        }
        // Extend through another intermediate vertex.
        for v in self.successors(u) {
            if v == self.i || v == self.j || v == self.k || self.on_path[v.index()] {
                continue;
            }
            let mut a2 = a.clone();
            a2.union_with(self.g.registers_of(v));
            self.l_chain.push(v);
            self.on_path[v.index()] = true;
            let found = self.dfs_l(v, &a2);
            self.on_path[v.index()] = false;
            self.l_chain.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Given a complete l-chain (with `a` = union over `l_1 … l_{s−1}`),
    /// decides whether a valid r-chain `j → … → i` exists, returning it.
    fn search_r(&self, a: &RegSet) -> Option<Vec<ReplicaId>> {
        let b = a.union(self.g.registers_of(self.k));
        // Budget: cycle edges = s + t + 1 ≤ max_edges.
        let t_max = self
            .max_edges
            .saturating_sub(self.l_chain.len())
            .saturating_sub(1);
        if t_max == 0 {
            return None;
        }
        // t = 1: direct edge j → i; condition 2 applies to X_{ji} − A.
        if self.r_edge_ok(self.j, self.i, a) {
            return Some(vec![self.j]);
        }
        // t ≥ 2: first hop filtered by A, the rest (including the final hop
        // into i) filtered by B; plain BFS over allowed vertices, bounded by
        // the remaining edge budget.
        let n = self.g.num_replicas();
        let mut parent: Vec<Option<ReplicaId>> = vec![None; n];
        let mut depth: Vec<usize> = vec![0; n];
        let mut queue = VecDeque::new();
        if t_max < 2 {
            return None;
        }
        for w in self.successors(self.j) {
            if w == self.i || self.on_path[w.index()] || w == self.j {
                continue;
            }
            if self.r_edge_ok(self.j, w, a) && parent[w.index()].is_none() {
                parent[w.index()] = Some(self.j);
                depth[w.index()] = 2;
                queue.push_back(w);
            }
        }
        while let Some(u) = queue.pop_front() {
            if self.r_edge_ok(u, self.i, &b) {
                // Reconstruct r-chain j … u.
                let mut chain = vec![u];
                let mut cur = u;
                while let Some(p) = parent[cur.index()] {
                    if p == self.j {
                        break;
                    }
                    chain.push(p);
                    cur = p;
                }
                chain.push(self.j);
                chain.reverse();
                return Some(chain);
            }
            if depth[u.index()] + 1 > t_max {
                continue;
            }
            for v in self.successors(u) {
                if v == self.i
                    || v == self.j
                    || self.on_path[v.index()]
                    || parent[v.index()].is_some()
                {
                    continue;
                }
                if self.r_edge_ok(u, v, &b) {
                    parent[v.index()] = Some(u);
                    depth[v.index()] = depth[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::topologies;

    #[test]
    fn figure5_e43_loop_exists() {
        // Paper Section 3 example (0-indexed): (1,2,3,4) is a (1, e43)-loop.
        let g = topologies::figure5();
        let w = find_loop(&g, ReplicaId(0), edge(3, 2)).expect("loop must exist");
        assert!(w.verify(&g), "witness must satisfy Definition 4: {w}");
        assert_eq!(
            w.cycle(),
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2), ReplicaId(3)]
        );
    }

    #[test]
    fn figure5_e32_loop_exists() {
        let g = topologies::figure5();
        let w = find_loop(&g, ReplicaId(0), edge(2, 1)).expect("loop must exist");
        assert!(w.verify(&g));
    }

    #[test]
    fn figure5_e34_loop_absent() {
        // (1,4,3,2) is not a (1, e34)-loop since X21 − X4 = ∅, and no other
        // candidate loop exists.
        let g = topologies::figure5();
        assert!(find_loop(&g, ReplicaId(0), edge(2, 3)).is_none());
    }

    #[test]
    fn figure5_e23_loop_absent() {
        let g = topologies::figure5();
        assert!(find_loop(&g, ReplicaId(0), edge(1, 2)).is_none());
    }

    #[test]
    fn degenerate_arguments_have_no_loop() {
        let g = topologies::figure5();
        // j = i.
        assert!(find_loop(&g, ReplicaId(0), edge(0, 2)).is_none());
        // k = i.
        assert!(find_loop(&g, ReplicaId(0), edge(2, 0)).is_none());
        // Non-edge (1–3 don't share registers in Figure 5).
        assert!(find_loop(&g, ReplicaId(1), edge(0, 2)).is_none());
    }

    #[test]
    fn tree_has_no_loops_at_all() {
        let g = topologies::line(5);
        for i in g.replicas() {
            for e in g.directed_edges() {
                if !e.touches(i) {
                    assert!(
                        find_loop(&g, i, e).is_none(),
                        "unexpected loop for {i}, {e} in a tree"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_has_loops_for_every_non_incident_edge() {
        // Paper Section 4: for a cycle share graph, every edge is tracked.
        let g = topologies::ring(6);
        for i in g.replicas() {
            for e in g.directed_edges() {
                if e.touches(i) {
                    continue;
                }
                let w = find_loop(&g, i, e)
                    .unwrap_or_else(|| panic!("ring must have an ({i}, {e})-loop"));
                assert!(w.verify(&g), "invalid witness {w}");
            }
        }
    }

    #[test]
    fn triangle_full_replication_has_minimal_loops() {
        let g = topologies::clique_full(3, 2);
        let w = find_loop(&g, ReplicaId(0), edge(1, 2)).expect("loop in K3");
        assert!(w.verify(&g));
        assert_eq!(
            w.l_chain.len() + w.r_chain.len(),
            2,
            "minimal loop is the triangle"
        );
    }

    #[test]
    fn counterexample1_i_tracks_neither_direction_of_jk() {
        let (g, roles) = topologies::counterexample1();
        assert!(find_loop(&g, roles.i, Edge::new(roles.j, roles.k)).is_none());
        assert!(find_loop(&g, roles.i, Edge::new(roles.k, roles.j)).is_none());
    }

    #[test]
    fn counterexample2_i_tracks_ekj_but_not_ejk() {
        let (g, roles) = topologies::counterexample2();
        let w = find_loop(&g, roles.i, Edge::new(roles.k, roles.j))
            .expect("Theorem 8 requires i to track e_kj here");
        assert!(w.verify(&g));
        assert!(find_loop(&g, roles.i, Edge::new(roles.j, roles.k)).is_none());
    }

    #[test]
    fn bounded_search_respects_edge_budget() {
        // The only loop of ring(6) has 6 edges.
        let g = topologies::ring(6);
        let e = edge(3, 2);
        assert!(find_loop_bounded(&g, ReplicaId(0), e, 5).is_none());
        let w = find_loop_bounded(&g, ReplicaId(0), e, 6).expect("full ring fits");
        assert!(w.verify(&g));
        assert_eq!(w.cycle().len(), 6);
        // Triangles need 3 edges.
        let t = topologies::clique_full(3, 1);
        assert!(find_loop_bounded(&t, ReplicaId(0), edge(1, 2), 2).is_none());
        assert!(find_loop_bounded(&t, ReplicaId(0), edge(1, 2), 3).is_some());
    }

    #[test]
    fn bounded_search_agrees_with_unbounded_when_loose() {
        let g = topologies::figure5();
        for i in g.replicas() {
            for e in g.directed_edges() {
                assert_eq!(
                    find_loop(&g, i, e).is_some(),
                    find_loop_bounded(&g, i, e, 64).is_some(),
                    "i={i} e={e}"
                );
            }
        }
    }

    #[test]
    fn witness_display_shows_cycle() {
        let g = topologies::ring(4);
        let w = find_loop(&g, ReplicaId(0), edge(2, 1)).unwrap();
        let s = w.to_string();
        assert!(s.contains("loop"), "{s}");
        assert!(s.contains("r0"), "{s}");
    }

    #[test]
    fn verify_rejects_tampered_witness() {
        let g = topologies::ring(5);
        let mut w = find_loop(&g, ReplicaId(0), edge(3, 2)).unwrap();
        assert!(w.verify(&g));
        // Break the chain endpoint invariant.
        w.r_chain[0] = ReplicaId(0);
        assert!(!w.verify(&g));
    }
}
