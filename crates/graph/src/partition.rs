//! Sharding the register space: the [`PartitionMap`].
//!
//! The paper's algorithm is defined *per share-graph instance*, and its
//! whole point — timestamps sized to the share graph rather than the full
//! replica set — only pays off when one physical node serves many register
//! partitions with independent small clocks. A [`PartitionMap`] makes that
//! deployment shape explicit: the global key space is split into contiguous
//! key ranges, one per partition; every partition is an independent instance
//! of the same share graph (its own registers, its own clocks); and each
//! partition's replica *roles* are placed onto physical nodes.
//!
//! Routing is therefore two lookups: `key → (partition, register)` by range
//! ([`PartitionMap::locate`]), then `(partition, role) → node` through the
//! hosting table ([`PartitionMap::node_of`]).

use crate::{GraphError, RegisterId, ReplicaId, ShareGraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a partition (an independent share-graph instance).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Zero-based index of this partition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How the register space is sharded over a set of physical nodes.
///
/// * `graph` — the per-partition share graph; its replicas are *roles*
///   (`0..R`), not nodes.
/// * `hosts[p][role]` — the node hosting role `role` of partition `p`.
///   Within one partition every role lives on a distinct node (a node
///   cannot be two replicas of the same instance), but across partitions a
///   node typically hosts many roles — that is the point.
/// * keys — the global key universe is `partitions × num_registers` keys;
///   partition `p` owns the contiguous range
///   `[p · num_registers, (p + 1) · num_registers)`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    graph: ShareGraph,
    nodes: usize,
    hosts: Vec<Vec<usize>>,
}

impl PartitionMap {
    /// A single-partition map placing role `i` on node `i` — the
    /// pre-sharding "one replica per node" deployment.
    pub fn single(graph: ShareGraph) -> PartitionMap {
        let roles = graph.num_replicas();
        PartitionMap {
            graph,
            nodes: roles,
            hosts: vec![(0..roles).collect()],
        }
    }

    /// `partitions` instances of `graph` over `nodes` nodes, partition `p`
    /// placing role `i` on node `(i + p) mod nodes` — a rotation that
    /// spreads every role evenly across the cluster.
    ///
    /// # Errors
    ///
    /// [`GraphError::PartitionMap`] if `partitions == 0` or
    /// `nodes < graph.num_replicas()` (two roles of one partition would
    /// collide on a node).
    pub fn rotated(
        graph: ShareGraph,
        partitions: u32,
        nodes: usize,
    ) -> Result<PartitionMap, GraphError> {
        let roles = graph.num_replicas();
        if nodes < roles {
            return Err(GraphError::PartitionMap(
                "fewer nodes than share-graph replicas",
            ));
        }
        let hosts = (0..partitions as usize)
            .map(|p| (0..roles).map(|i| (i + p) % nodes).collect())
            .collect();
        PartitionMap::from_parts(graph, nodes, hosts)
    }

    /// Builds a map from an explicit hosting table (`hosts[p][role]` =
    /// node), validating shape and role-disjointness per partition.
    ///
    /// # Errors
    ///
    /// [`GraphError::PartitionMap`] on an empty table, a row whose length
    /// differs from the share graph's replica count, an out-of-range node,
    /// or two roles of one partition on the same node.
    pub fn from_parts(
        graph: ShareGraph,
        nodes: usize,
        hosts: Vec<Vec<usize>>,
    ) -> Result<PartitionMap, GraphError> {
        if hosts.is_empty() {
            return Err(GraphError::PartitionMap("no partitions"));
        }
        if u32::try_from(hosts.len()).is_err() {
            return Err(GraphError::PartitionMap("too many partitions"));
        }
        let roles = graph.num_replicas();
        for row in &hosts {
            if row.len() != roles {
                return Err(GraphError::PartitionMap(
                    "hosting row length differs from replica count",
                ));
            }
            if row.iter().any(|&node| node >= nodes) {
                return Err(GraphError::PartitionMap("host node out of range"));
            }
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != roles {
                return Err(GraphError::PartitionMap(
                    "two roles of one partition on the same node",
                ));
            }
        }
        Ok(PartitionMap {
            graph,
            nodes,
            hosts,
        })
    }

    /// The per-partition share graph (roles `0..R`).
    pub fn graph(&self) -> &ShareGraph {
        &self.graph
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// Number of physical nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The raw hosting table, `hosts[p][role]` = node (wire serialization).
    pub fn hosts(&self) -> &[Vec<usize>] {
        &self.hosts
    }

    /// Size of the global key universe
    /// (`partitions × registers-per-partition`).
    pub fn num_keys(&self) -> u64 {
        u64::from(self.num_partitions()) * self.graph.num_registers() as u64
    }

    /// Routes a key to its partition and in-partition register by key
    /// range; `None` for keys outside the universe.
    pub fn locate(&self, key: u64) -> Option<(PartitionId, RegisterId)> {
        let span = self.graph.num_registers() as u64;
        if span == 0 || key >= self.num_keys() {
            return None;
        }
        Some((
            PartitionId((key / span) as u32),
            RegisterId((key % span) as u32),
        ))
    }

    /// The key owned by `(partition, register)` — inverse of
    /// [`PartitionMap::locate`].
    pub fn key_of(&self, p: PartitionId, x: RegisterId) -> u64 {
        u64::from(p.0) * self.graph.num_registers() as u64 + u64::from(x.0)
    }

    /// The node hosting `role` of partition `p`.
    pub fn node_of(&self, p: PartitionId, role: ReplicaId) -> usize {
        self.hosts[p.index()][role.index()]
    }

    /// The role `node` plays in partition `p`, if any.
    pub fn role_on(&self, p: PartitionId, node: usize) -> Option<ReplicaId> {
        self.hosts[p.index()]
            .iter()
            .position(|&host| host == node)
            .map(ReplicaId)
    }

    /// Every `(partition, role)` hosted by `node`, in partition order.
    pub fn hosted_by(&self, node: usize) -> Vec<(PartitionId, ReplicaId)> {
        (0..self.num_partitions())
            .filter_map(|p| {
                let p = PartitionId(p);
                self.role_on(p, node).map(|role| (p, role))
            })
            .collect()
    }

    /// The nodes storing register `x` of partition `p` (the partition's
    /// holders mapped through the hosting table), in holder order.
    pub fn holder_nodes(&self, p: PartitionId, x: RegisterId) -> Vec<usize> {
        self.graph
            .holders(x)
            .iter()
            .map(|&role| self.node_of(p, role))
            .collect()
    }

    /// Iterator over all partition ids.
    pub fn partitions(&self) -> impl Iterator<Item = PartitionId> + '_ {
        (0..self.num_partitions()).map(PartitionId)
    }
}

impl fmt::Debug for PartitionMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionMap")
            .field("partitions", &self.num_partitions())
            .field("nodes", &self.nodes)
            .field("roles", &self.graph.num_replicas())
            .field("registers_per_partition", &self.graph.num_registers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn single_is_identity() {
        let m = PartitionMap::single(topologies::ring(4));
        assert_eq!(m.num_partitions(), 1);
        assert_eq!(m.num_nodes(), 4);
        for i in 0..4 {
            assert_eq!(m.node_of(PartitionId(0), ReplicaId(i)), i);
            assert_eq!(m.role_on(PartitionId(0), i), Some(ReplicaId(i)));
        }
    }

    #[test]
    fn rotation_spreads_roles() {
        let m = PartitionMap::rotated(topologies::ring(4), 8, 4).unwrap();
        assert_eq!(m.num_partitions(), 8);
        // Every node hosts one role of every partition.
        for node in 0..4 {
            assert_eq!(m.hosted_by(node).len(), 8);
        }
        // Partition 1 is the identity shifted by one.
        assert_eq!(m.node_of(PartitionId(1), ReplicaId(0)), 1);
        assert_eq!(m.node_of(PartitionId(1), ReplicaId(3)), 0);
    }

    #[test]
    fn key_ranges_route_contiguously() {
        let g = topologies::ring(4); // 4 registers
        let m = PartitionMap::rotated(g, 3, 4).unwrap();
        assert_eq!(m.num_keys(), 12);
        assert_eq!(m.locate(0), Some((PartitionId(0), RegisterId(0))));
        assert_eq!(m.locate(3), Some((PartitionId(0), RegisterId(3))));
        assert_eq!(m.locate(4), Some((PartitionId(1), RegisterId(0))));
        assert_eq!(m.locate(11), Some((PartitionId(2), RegisterId(3))));
        assert_eq!(m.locate(12), None);
        for key in 0..m.num_keys() {
            let (p, x) = m.locate(key).unwrap();
            assert_eq!(m.key_of(p, x), key);
        }
    }

    #[test]
    fn holder_nodes_follow_the_rotation() {
        let g = topologies::ring(4); // register 0 held by roles 0 and 1
        let m = PartitionMap::rotated(g, 4, 4).unwrap();
        assert_eq!(m.holder_nodes(PartitionId(0), RegisterId(0)), vec![0, 1]);
        assert_eq!(m.holder_nodes(PartitionId(2), RegisterId(0)), vec![2, 3]);
        assert_eq!(m.holder_nodes(PartitionId(3), RegisterId(0)), vec![3, 0]);
    }

    #[test]
    fn validation_rejects_bad_tables() {
        let g = topologies::ring(4);
        assert!(
            PartitionMap::rotated(g.clone(), 2, 3).is_err(),
            "too few nodes"
        );
        assert!(PartitionMap::from_parts(g.clone(), 4, vec![]).is_err());
        assert!(
            PartitionMap::from_parts(g.clone(), 4, vec![vec![0, 1, 2]]).is_err(),
            "short row"
        );
        assert!(
            PartitionMap::from_parts(g.clone(), 4, vec![vec![0, 1, 2, 4]]).is_err(),
            "node out of range"
        );
        assert!(
            PartitionMap::from_parts(g, 4, vec![vec![0, 1, 2, 2]]).is_err(),
            "role collision"
        );
    }

    #[test]
    fn more_nodes_than_roles_leave_gaps() {
        // 6 nodes, 3-role line: each partition occupies 3 of the 6 nodes.
        let m = PartitionMap::rotated(topologies::line(3), 6, 6).unwrap();
        let p = PartitionId(0);
        assert_eq!(m.role_on(p, 0), Some(ReplicaId(0)));
        assert_eq!(m.role_on(p, 3), None);
        let hosted: usize = (0..6).map(|n| m.hosted_by(n).len()).sum();
        assert_eq!(hosted, 6 * 3);
    }
}
