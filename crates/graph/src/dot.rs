//! Graphviz (DOT) export for share graphs and timestamp graphs, used by the
//! examples and experiment binaries to visualize the paper's figures.

use crate::{ShareGraph, TimestampGraph};
use std::fmt::Write as _;

/// Renders a share graph as an undirected Graphviz graph, edges labelled by
/// their shared register sets (the paper's figure style).
pub fn share_graph_dot(g: &ShareGraph) -> String {
    let mut out = String::from("graph share {\n  node [shape=circle];\n");
    for i in g.replicas() {
        let _ = writeln!(
            out,
            "  r{} [label=\"r{}\\n{}\"];",
            i.index(),
            i.index(),
            g.registers_of(i)
        );
    }
    for e in g.undirected_edges() {
        let _ = writeln!(
            out,
            "  r{} -- r{} [label=\"{}\"];",
            e.from.index(),
            e.to.index(),
            g.shared_on(e)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a timestamp graph as a directed Graphviz graph; edges incident at
/// the owner are solid, loop-induced edges dashed.
pub fn timestamp_graph_dot(t: &TimestampGraph) -> String {
    let mut out = String::from("digraph timestamp {\n  node [shape=circle];\n");
    let owner = t.replica();
    let _ = writeln!(out, "  r{} [style=filled];", owner.index());
    for v in t.vertices() {
        if v != owner {
            let _ = writeln!(out, "  r{};", v.index());
        }
    }
    for e in t.edges() {
        let style = if e.touches(owner) { "solid" } else { "dashed" };
        let _ = writeln!(
            out,
            "  r{} -> r{} [style={style}];",
            e.from.index(),
            e.to.index()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use crate::ReplicaId;

    #[test]
    fn share_graph_dot_mentions_all_edges() {
        let g = topologies::figure3();
        let dot = share_graph_dot(&g);
        assert!(dot.starts_with("graph share {"));
        assert!(dot.contains("r0 -- r1"));
        assert!(dot.contains("r1 -- r2"));
        assert!(dot.contains("r2 -- r3"));
        assert!(!dot.contains("r0 -- r3"));
    }

    #[test]
    fn timestamp_graph_dot_distinguishes_loop_edges() {
        let g = topologies::figure5();
        let t = TimestampGraph::compute(&g, ReplicaId(0));
        let dot = timestamp_graph_dot(&t);
        assert!(dot.contains("style=filled"));
        assert!(dot.contains("style=dashed"), "loop edges must be dashed");
        assert!(dot.contains("style=solid"));
        assert!(dot.ends_with("}\n"));
    }
}
