//! A compact register set used pervasively by loop detection.
//!
//! `(i, e_jk)`-loop detection (Definition 4) performs many set-difference
//! emptiness tests of the form `X_jk − (X_{l_1} ∪ … ∪ X_{l_p}) ≠ ∅` in the
//! inner loop of a path search, so register sets are represented as packed
//! 64-bit-word bitsets rather than tree sets.

use crate::RegisterId;
use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-universe set of [`RegisterId`]s backed by packed `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RegSet {
    words: Vec<u64>,
    universe: usize,
}

impl RegSet {
    /// Creates an empty set over a universe of `universe` registers
    /// (`0..universe`).
    pub fn new(universe: usize) -> Self {
        RegSet {
            words: vec![0; universe.div_ceil(WORD_BITS)],
            universe,
        }
    }

    /// Creates a set over `universe` registers containing the given members.
    ///
    /// # Panics
    ///
    /// Panics if any member is outside the universe.
    pub fn from_iter_in<I: IntoIterator<Item = RegisterId>>(universe: usize, iter: I) -> Self {
        let mut s = RegSet::new(universe);
        for r in iter {
            s.insert(r);
        }
        s
    }

    /// The size of the universe this set draws from.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a register; returns true if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if the register is outside the universe.
    pub fn insert(&mut self, r: RegisterId) -> bool {
        let i = r.index();
        assert!(
            i < self.universe,
            "register {r} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes a register; returns true if it was present.
    pub fn remove(&mut self, r: RegisterId) -> bool {
        let i = r.index();
        if i >= self.universe {
            return false;
        }
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    pub fn contains(&self, r: RegisterId) -> bool {
        let i = r.index();
        i < self.universe && self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &RegSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &RegSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self − other`).
    pub fn difference_with(&mut self, other: &RegSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &RegSet) -> RegSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self − other` as a new set.
    pub fn difference(&self, other: &RegSet) -> RegSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// True if `self − other` is empty, i.e. `self ⊆ other`.
    ///
    /// This is the hot operation of loop detection: condition checks of
    /// Definition 4 all have the form "`A − B ≠ ∅`", i.e. `!A.is_subset(B)`.
    pub fn is_subset(&self, other: &RegSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// True if the two sets share no member.
    pub fn is_disjoint(&self, other: &RegSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Smallest member, if any.
    pub fn first(&self) -> Option<RegisterId> {
        self.iter().next()
    }
}

/// Iterator over the members of a [`RegSet`] in ascending order.
pub struct Iter<'a> {
    set: &'a RegSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = RegisterId;

    fn next(&mut self) -> Option<RegisterId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(RegisterId((self.word * WORD_BITS + bit) as u32));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a RegSet {
    type Item = RegisterId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, r) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(universe: usize, members: &[u32]) -> RegSet {
        RegSet::from_iter_in(universe, members.iter().map(|&m| RegisterId(m)))
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = RegSet::new(200);
        assert!(s.insert(RegisterId(0)));
        assert!(s.insert(RegisterId(64)));
        assert!(s.insert(RegisterId(199)));
        assert!(!s.insert(RegisterId(64)));
        assert!(s.contains(RegisterId(0)));
        assert!(s.contains(RegisterId(64)));
        assert!(s.contains(RegisterId(199)));
        assert!(!s.contains(RegisterId(1)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(RegisterId(64)));
        assert!(!s.remove(RegisterId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = rs(130, &[1, 2, 3, 100]);
        let b = rs(130, &[2, 3, 4, 129]);
        assert_eq!(a.union(&b), rs(130, &[1, 2, 3, 4, 100, 129]));
        assert_eq!(a.intersection(&b), rs(130, &[2, 3]));
        assert_eq!(a.difference(&b), rs(130, &[1, 100]));
        assert!(!a.is_subset(&b));
        assert!(rs(130, &[2, 3]).is_subset(&b));
        assert!(a.is_disjoint(&rs(130, &[5, 6])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = rs(70, &[0, 69]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(RegSet::new(0).is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let s = rs(300, &[250, 3, 64, 65, 0]);
        let got: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 250]);
        assert_eq!(s.first(), Some(RegisterId(0)));
    }

    #[test]
    fn subset_matches_difference_emptiness() {
        let a = rs(66, &[1, 65]);
        let b = rs(66, &[1, 2, 65]);
        assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        assert_eq!(b.is_subset(&a), b.difference(&a).is_empty());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let _ = rs(10, &[1]).union(&rs(20, &[1]));
    }

    #[test]
    fn display_and_debug() {
        let s = rs(10, &[1, 3]);
        assert_eq!(s.to_string(), "{x1,x3}");
        assert_eq!(format!("{s:?}"), "{RegisterId(1), RegisterId(3)}");
    }
}
