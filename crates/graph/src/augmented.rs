//! The client-server extension: augmented share graphs and augmented
//! timestamp graphs (Section 6, Appendix E).
//!
//! In the client-server architecture (Figure 1b) a client `c` may access any
//! replica in its replica set `R_c`, propagating causal dependencies between
//! replicas that share no register. The augmented share graph
//! `Ĝ = (V, Ê)` (Definition 16) adds a directed edge pair between every two
//! replicas co-accessed by some client; augmented `(i, e_jk)`-loops
//! (Definition 27) may traverse those edges, and conditions (ii)/(iii) are
//! satisfied for free on them. The augmented timestamp graph `Ĝ_i`
//! (Definition 28) is then intersected back with the *share* edges `E`.

use crate::loops::{find_loop_augmented, LoopWitness};
use crate::{Edge, GraphError, ReplicaId, ShareGraph, TimestampGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a client in the client-server architecture.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub usize);

impl ClientId {
    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The augmented share graph `Ĝ` (Definition 16): a share graph plus the
/// client access sets `R_c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AugmentedShareGraph {
    base: ShareGraph,
    /// `R_c` for each client, sorted and deduplicated.
    clients: Vec<Vec<ReplicaId>>,
    /// Flattened `R × R` matrix: true iff some client co-accesses the pair.
    client_pair: Vec<bool>,
}

impl AugmentedShareGraph {
    /// Builds the augmented graph from a share graph and per-client replica
    /// sets.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyClientReplicaSet`] if some client has no
    ///   replicas.
    /// * [`GraphError::ClientReplicaOutOfRange`] if a client references a
    ///   replica outside the share graph.
    pub fn new(
        base: ShareGraph,
        clients: Vec<Vec<ReplicaId>>,
    ) -> Result<AugmentedShareGraph, GraphError> {
        let r = base.num_replicas();
        let mut norm = Vec::with_capacity(clients.len());
        let mut client_pair = vec![false; r * r];
        for (c, set) in clients.into_iter().enumerate() {
            if set.is_empty() {
                return Err(GraphError::EmptyClientReplicaSet { client: c });
            }
            let mut set: Vec<ReplicaId> = set;
            set.sort_unstable();
            set.dedup();
            for &rep in &set {
                if rep.index() >= r {
                    return Err(GraphError::ClientReplicaOutOfRange {
                        client: c,
                        replica: rep,
                    });
                }
            }
            for (ai, &a) in set.iter().enumerate() {
                for &b in &set[ai + 1..] {
                    client_pair[a.index() * r + b.index()] = true;
                    client_pair[b.index() * r + a.index()] = true;
                }
            }
            norm.push(set);
        }
        Ok(AugmentedShareGraph {
            base,
            clients: norm,
            client_pair,
        })
    }

    /// The underlying share graph.
    pub fn share_graph(&self) -> &ShareGraph {
        &self.base
    }

    /// Number of clients `C`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Iterator over client ids.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> + '_ {
        (0..self.clients.len()).map(ClientId)
    }

    /// The replica set `R_c` of a client.
    ///
    /// # Panics
    ///
    /// Panics if the client id is out of range.
    pub fn replicas_of(&self, c: ClientId) -> &[ReplicaId] {
        &self.clients[c.index()]
    }

    /// Clients that may access replica `r`.
    pub fn clients_of(&self, r: ReplicaId) -> Vec<ClientId> {
        self.clients()
            .filter(|&c| self.clients[c.index()].contains(&r))
            .collect()
    }

    /// True iff some client co-accesses `u` and `v` (a *client edge* of
    /// `Ê − E` or parallel to an `E` edge).
    pub fn client_edge(&self, u: ReplicaId, v: ReplicaId) -> bool {
        u != v && self.client_pair[u.index() * self.base.num_replicas() + v.index()]
    }

    /// True iff `e ∈ Ê` (share edge or client edge, Definition 16).
    pub fn has_augmented_edge(&self, e: Edge) -> bool {
        self.base.has_edge(e) || self.client_edge(e.from, e.to)
    }

    /// Finds an augmented `(i, e_jk)`-loop (Definition 27).
    pub fn find_augmented_loop(&self, i: ReplicaId, e: Edge) -> Option<LoopWitness> {
        let pred = |u: ReplicaId, v: ReplicaId| self.client_edge(u, v);
        find_loop_augmented(&self.base, i, e, &pred)
    }

    /// Computes the augmented timestamp graph `Ĝ_i` (Definition 28):
    /// incident share edges plus share edges `e_jk` with an augmented loop;
    /// client-only edges are excluded by the `∩ E` in the definition.
    pub fn augmented_timestamp_graph(&self, i: ReplicaId) -> TimestampGraph {
        let g = &self.base;
        let mut edges = BTreeSet::new();
        for &n in g.neighbors(i) {
            edges.insert(Edge::new(i, n));
            edges.insert(Edge::new(n, i));
        }
        for e in g.directed_edges() {
            if e.touches(i) || edges.contains(&e) {
                continue;
            }
            if self.find_augmented_loop(i, e).is_some() {
                edges.insert(e);
            }
        }
        TimestampGraph::from_edges(i, edges)
    }

    /// Computes `Ĝ_i` for every replica.
    pub fn augmented_timestamp_graphs(&self) -> Vec<TimestampGraph> {
        self.base
            .replicas()
            .map(|i| self.augmented_timestamp_graph(i))
            .collect()
    }

    /// The edge set a *client* timestamp is indexed by:
    /// `∪_{i ∈ R_c} Ê_i` (Appendix E.5).
    pub fn client_timestamp_edges(&self, c: ClientId) -> Vec<Edge> {
        let mut set: BTreeSet<Edge> = BTreeSet::new();
        for &r in self.replicas_of(c) {
            set.extend(self.augmented_timestamp_graph(r).edges());
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::topologies;

    /// Two disjoint lines 0–1 and 2–3 bridged only by a client accessing
    /// replicas 1 and 2.
    fn bridged() -> AugmentedShareGraph {
        let g = crate::ShareGraphBuilder::new()
            .replica_raw([0])
            .replica_raw([0, 1])
            .replica_raw([2, 3])
            .replica_raw([3])
            .build()
            .unwrap();
        AugmentedShareGraph::new(g, vec![vec![ReplicaId(1), ReplicaId(2)]]).unwrap()
    }

    #[test]
    fn client_edges_exist_without_shared_registers() {
        let a = bridged();
        assert!(a.client_edge(ReplicaId(1), ReplicaId(2)));
        assert!(!a.share_graph().are_adjacent(ReplicaId(1), ReplicaId(2)));
        assert!(a.has_augmented_edge(edge(1, 2)));
        assert!(!a.has_augmented_edge(edge(0, 3)));
    }

    #[test]
    fn augmented_graph_of_tree_plus_client_has_no_loops() {
        // The bridged graph is still a tree in Ĝ, so Ĝ_i = incident edges.
        let a = bridged();
        for i in a.share_graph().replicas() {
            let t = a.augmented_timestamp_graph(i);
            assert_eq!(t.loop_edges().count(), 0);
        }
    }

    #[test]
    fn client_closing_a_cycle_creates_loop_edges() {
        // Line 0–1–2–3 (registers unique per edge) plus a client accessing
        // both ends closes a cycle in Ĝ; replica 1 must now track edges on
        // the far side of the cycle.
        let g = topologies::line(4);
        let a = AugmentedShareGraph::new(g, vec![vec![ReplicaId(0), ReplicaId(3)]]).unwrap();
        let t1 = a.augmented_timestamp_graph(ReplicaId(1));
        // Without the client, a line gives only incident edges.
        let plain = TimestampGraph::compute(a.share_graph(), ReplicaId(1));
        assert_eq!(plain.loop_edges().count(), 0);
        assert!(
            t1.loop_edges().count() > 0,
            "client-induced cycle must add tracked edges: {t1}"
        );
        // The added edges are share edges only (∩ E in Definition 28).
        for e in t1.edges() {
            assert!(a.share_graph().has_edge(e), "client-only edge leaked: {e}");
        }
    }

    #[test]
    fn no_clients_matches_plain_timestamp_graph() {
        let g = topologies::figure5();
        let a = AugmentedShareGraph::new(g.clone(), vec![]).unwrap();
        for i in g.replicas() {
            assert_eq!(
                a.augmented_timestamp_graph(i),
                TimestampGraph::compute(&g, i),
                "replica {i}"
            );
        }
    }

    #[test]
    fn single_replica_clients_add_nothing() {
        let g = topologies::ring(4);
        let a = AugmentedShareGraph::new(g.clone(), vec![vec![ReplicaId(0)], vec![ReplicaId(2)]])
            .unwrap();
        for i in g.replicas() {
            assert_eq!(
                a.augmented_timestamp_graph(i),
                TimestampGraph::compute(&g, i)
            );
        }
    }

    #[test]
    fn client_timestamp_edges_union() {
        let a = bridged();
        let c = ClientId(0);
        let union = a.client_timestamp_edges(c);
        let t1 = a.augmented_timestamp_graph(ReplicaId(1));
        let t2 = a.augmented_timestamp_graph(ReplicaId(2));
        for e in t1.edges().chain(t2.edges()) {
            assert!(union.contains(&e));
        }
        assert_eq!(
            union.len(),
            t1.edges()
                .chain(t2.edges())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }

    #[test]
    fn validation_errors() {
        let g = topologies::line(2);
        assert!(matches!(
            AugmentedShareGraph::new(g.clone(), vec![vec![]]),
            Err(GraphError::EmptyClientReplicaSet { client: 0 })
        ));
        assert!(matches!(
            AugmentedShareGraph::new(g, vec![vec![ReplicaId(9)]]),
            Err(GraphError::ClientReplicaOutOfRange { client: 0, .. })
        ));
    }

    #[test]
    fn clients_of_replica() {
        let a = bridged();
        assert_eq!(a.clients_of(ReplicaId(1)), vec![ClientId(0)]);
        assert!(a.clients_of(ReplicaId(0)).is_empty());
        assert_eq!(a.num_clients(), 1);
        assert_eq!(a.replicas_of(ClientId(0)), &[ReplicaId(1), ReplicaId(2)]);
    }
}
