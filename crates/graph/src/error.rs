//! Error type for share-graph construction and validation.

use crate::{RegisterId, ReplicaId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no replicas.
    NoReplicas,
    /// A register id is referenced that is not stored by any replica in the
    /// declared universe.
    UnknownRegister(RegisterId),
    /// A replica id is out of range.
    UnknownReplica(ReplicaId),
    /// A client (client-server architecture) references a replica outside the
    /// share graph.
    ClientReplicaOutOfRange {
        /// Index of the offending client.
        client: usize,
        /// The out-of-range replica.
        replica: ReplicaId,
    },
    /// A client has an empty replica set.
    EmptyClientReplicaSet {
        /// Index of the offending client.
        client: usize,
    },
    /// A partition map's hosting table is malformed (see
    /// [`crate::PartitionMap::from_parts`]).
    PartitionMap(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoReplicas => write!(f, "share graph must have at least one replica"),
            GraphError::UnknownRegister(r) => write!(f, "register {r} is not in the universe"),
            GraphError::UnknownReplica(r) => write!(f, "replica {r} is out of range"),
            GraphError::ClientReplicaOutOfRange { client, replica } => {
                write!(
                    f,
                    "client c{client} references out-of-range replica {replica}"
                )
            }
            GraphError::EmptyClientReplicaSet { client } => {
                write!(f, "client c{client} has an empty replica set")
            }
            GraphError::PartitionMap(why) => write!(f, "invalid partition map: {why}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            GraphError::NoReplicas,
            GraphError::UnknownRegister(RegisterId(3)),
            GraphError::UnknownReplica(ReplicaId(9)),
            GraphError::ClientReplicaOutOfRange {
                client: 1,
                replica: ReplicaId(7),
            },
            GraphError::EmptyClientReplicaSet { client: 0 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
