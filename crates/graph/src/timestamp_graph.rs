//! Timestamp graphs `G_i` (Definition 5).

use crate::loops;
use crate::{Edge, ReplicaId, ShareGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The timestamp graph `G_i = (V_i, E_i)` of replica `i` (Definition 5).
///
/// `E_i` consists of
/// * every directed edge incident at `i` (both orientations), and
/// * every directed edge `e_jk` (`j ≠ i ≠ k`) for which an
///   `(i, e_jk)`-loop exists.
///
/// Theorem 8 shows every edge of `E_i` *must* be tracked by `i`'s timestamp;
/// the Section 3.3 algorithm shows tracking exactly `E_i` is sufficient.
/// `E_i` is directed and in general asymmetric (`e_43 ∈ G_1`, `e_34 ∉ G_1`
/// in the paper's Figure 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimestampGraph {
    replica: ReplicaId,
    edges: BTreeSet<Edge>,
}

impl TimestampGraph {
    /// Computes `G_i` exactly, by incident-edge collection plus
    /// `(i, e_jk)`-loop search over every non-incident directed edge.
    ///
    /// ```
    /// use prcc_graph::{topologies, ReplicaId, TimestampGraph};
    /// // Trees have no loops: only the 2·N_i incident edges are tracked.
    /// let g = topologies::line(4);
    /// let t = TimestampGraph::compute(&g, ReplicaId(1));
    /// assert_eq!(t.len(), 4);
    /// assert_eq!(t.loop_edges().count(), 0);
    /// ```
    pub fn compute(g: &ShareGraph, i: ReplicaId) -> TimestampGraph {
        let mut edges = BTreeSet::new();
        for &n in g.neighbors(i) {
            edges.insert(Edge::new(i, n));
            edges.insert(Edge::new(n, i));
        }
        for e in g.directed_edges() {
            if e.touches(i) || edges.contains(&e) {
                continue;
            }
            if loops::has_loop(g, i, e) {
                edges.insert(e);
            }
        }
        TimestampGraph { replica: i, edges }
    }

    /// Computes the timestamp graphs of all replicas.
    pub fn compute_all(g: &ShareGraph) -> Vec<TimestampGraph> {
        g.replicas()
            .map(|i| TimestampGraph::compute(g, i))
            .collect()
    }

    /// Like [`TimestampGraph::compute`], but also returns, for every
    /// loop-induced edge, the `(i, e_jk)`-loop that justifies tracking it —
    /// the "why is this edge in my timestamp?" diagnostic.
    ///
    /// Incident edges have no witness (they are tracked unconditionally by
    /// Definition 5).
    pub fn compute_with_witnesses(
        g: &ShareGraph,
        i: ReplicaId,
    ) -> (TimestampGraph, Vec<loops::LoopWitness>) {
        let mut edges = BTreeSet::new();
        for &n in g.neighbors(i) {
            edges.insert(Edge::new(i, n));
            edges.insert(Edge::new(n, i));
        }
        let mut witnesses = Vec::new();
        for e in g.directed_edges() {
            if e.touches(i) || edges.contains(&e) {
                continue;
            }
            if let Some(w) = loops::find_loop(g, i, e) {
                debug_assert!(w.verify(g));
                edges.insert(e);
                witnesses.push(w);
            }
        }
        (TimestampGraph { replica: i, edges }, witnesses)
    }

    /// Builds a timestamp graph from an explicit edge set (used by baseline
    /// protocols that deliberately track a different set, e.g. the
    /// hoop-based or bounded-loop baselines).
    pub fn from_edges<I: IntoIterator<Item = Edge>>(replica: ReplicaId, edges: I) -> Self {
        TimestampGraph {
            replica,
            edges: edges.into_iter().collect(),
        }
    }

    /// The replica `i` this graph belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The edge set `E_i`, ascending.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges `|E_i|` — the length of the (uncompressed)
    /// edge-indexed vector timestamp of replica `i`.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if `E_i` is empty (isolated replica).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Membership test for `e ∈ E_i`.
    pub fn contains(&self, e: Edge) -> bool {
        self.edges.contains(&e)
    }

    /// The vertex set `V_i` (endpoints of tracked edges), ascending.
    pub fn vertices(&self) -> Vec<ReplicaId> {
        let mut v: BTreeSet<ReplicaId> = BTreeSet::new();
        for e in &self.edges {
            v.insert(e.from);
            v.insert(e.to);
        }
        v.into_iter().collect()
    }

    /// Edges incident at the owning replica (`e_ij` and `e_ji`).
    pub fn incident_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let i = self.replica;
        self.edges().filter(move |e| e.touches(i))
    }

    /// Non-incident tracked edges — those justified by `(i, e_jk)`-loops.
    pub fn loop_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let i = self.replica;
        self.edges().filter(move |e| !e.touches(i))
    }

    /// The edge set intersection `E_i ∩ E_k` used by the algorithm's `merge`
    /// and predicate `J` (Section 3.3).
    pub fn common_edges(&self, other: &TimestampGraph) -> Vec<Edge> {
        self.edges.intersection(&other.edges).copied().collect()
    }

    /// Outgoing tracked edges of a vertex `j`: `{e_jk ∈ E_i}` (the paper's
    /// `O_j`, used by compression).
    pub fn outgoing_of(&self, j: ReplicaId) -> Vec<Edge> {
        self.edges().filter(|e| e.from == j).collect()
    }
}

impl fmt::Display for TimestampGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G_{} = {{", self.replica.index())?;
        for (n, e) in self.edges().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;
    use crate::topologies;

    #[test]
    fn figure5_timestamp_graph_matches_paper() {
        let g = topologies::figure5();
        let g1 = TimestampGraph::compute(&g, ReplicaId(0));
        // Incident edges at replica 1 (0-indexed 0): neighbors 2 (y) and 4
        // (y, w).
        assert!(g1.contains(edge(0, 1)));
        assert!(g1.contains(edge(1, 0)));
        assert!(g1.contains(edge(0, 3)));
        assert!(g1.contains(edge(3, 0)));
        // The paper's headline: e43 ∈ G1, e34 ∉ G1 (0-indexed: 3→2 vs 2→3).
        assert!(g1.contains(edge(3, 2)));
        assert!(!g1.contains(edge(2, 3)));
        // Also e32 ∈ G1, e23 ∉ G1.
        assert!(g1.contains(edge(2, 1)));
        assert!(!g1.contains(edge(1, 2)));
        // The triangle 1-2-4 forces both orientations of the 2–4 edge.
        assert!(g1.contains(edge(1, 3)));
        assert!(g1.contains(edge(3, 1)));
        assert_eq!(g1.len(), 8);
    }

    #[test]
    fn tree_tracks_only_incident_edges() {
        let g = topologies::line(6);
        for i in g.replicas() {
            let ti = TimestampGraph::compute(&g, i);
            assert_eq!(ti.loop_edges().count(), 0, "trees have no loops");
            assert_eq!(ti.len(), 2 * g.degree(i), "2·N_i incident edges");
        }
    }

    #[test]
    fn star_tracks_only_incident_edges() {
        let g = topologies::star(6);
        let hub = TimestampGraph::compute(&g, ReplicaId(0));
        assert_eq!(hub.len(), 2 * 5);
        let leaf = TimestampGraph::compute(&g, ReplicaId(3));
        assert_eq!(leaf.len(), 2);
    }

    #[test]
    fn ring_tracks_every_edge() {
        // Section 4: cycle of n replicas → timestamp of size 2n.
        for n in [3, 4, 5, 6, 7] {
            let g = topologies::ring(n);
            for i in g.replicas() {
                let ti = TimestampGraph::compute(&g, i);
                assert_eq!(ti.len(), 2 * n, "ring({n}) replica {i}");
            }
        }
    }

    #[test]
    fn full_replication_clique_tracks_every_edge() {
        let g = topologies::clique_full(4, 2);
        for i in g.replicas() {
            let ti = TimestampGraph::compute(&g, i);
            assert_eq!(ti.len(), 4 * 3, "R(R−1) raw entries");
        }
    }

    #[test]
    fn counterexample1_g_i_excludes_jk_both_ways() {
        let (g, r) = topologies::counterexample1();
        let gi = TimestampGraph::compute(&g, r.i);
        assert!(!gi.contains(Edge::new(r.j, r.k)));
        assert!(!gi.contains(Edge::new(r.k, r.j)));
        // ... but of course contains its own incident edges.
        assert!(gi.contains(Edge::new(r.i, r.b2)));
        assert!(gi.contains(Edge::new(r.a1, r.i)));
    }

    #[test]
    fn counterexample2_g_i_has_ekj_not_ejk() {
        let (g, r) = topologies::counterexample2();
        let gi = TimestampGraph::compute(&g, r.i);
        assert!(gi.contains(Edge::new(r.k, r.j)), "Theorem 8 forces e_kj");
        assert!(!gi.contains(Edge::new(r.j, r.k)));
    }

    #[test]
    fn incident_edges_always_present() {
        let g = topologies::clique_pairwise(5);
        for i in g.replicas() {
            let ti = TimestampGraph::compute(&g, i);
            for &n in g.neighbors(i) {
                assert!(ti.contains(Edge::new(i, n)));
                assert!(ti.contains(Edge::new(n, i)));
            }
        }
    }

    #[test]
    fn common_edges_is_symmetric() {
        let g = topologies::ring(5);
        let all = TimestampGraph::compute_all(&g);
        for a in &all {
            for b in &all {
                assert_eq!(a.common_edges(b), b.common_edges(a));
            }
        }
    }

    #[test]
    fn vertices_cover_edge_endpoints() {
        let g = topologies::figure5();
        let g1 = TimestampGraph::compute(&g, ReplicaId(0));
        let vs = g1.vertices();
        for e in g1.edges() {
            assert!(vs.contains(&e.from));
            assert!(vs.contains(&e.to));
        }
    }

    #[test]
    fn outgoing_of_partitions_edges() {
        let g = topologies::ring(4);
        let t = TimestampGraph::compute(&g, ReplicaId(0));
        let total: usize = g.replicas().map(|j| t.outgoing_of(j).len()).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn display_lists_edges() {
        let g = topologies::line(2);
        let t = TimestampGraph::compute(&g, ReplicaId(0));
        let s = t.to_string();
        assert!(s.starts_with("G_0"));
        assert!(s.contains("e(0→1)"));
    }

    #[test]
    fn witnesses_cover_exactly_the_loop_edges() {
        let g = topologies::figure5();
        let (tsg, witnesses) = TimestampGraph::compute_with_witnesses(&g, ReplicaId(0));
        assert_eq!(tsg, TimestampGraph::compute(&g, ReplicaId(0)));
        let witnessed: std::collections::BTreeSet<Edge> =
            witnesses.iter().map(|w| w.edge).collect();
        let loop_edges: std::collections::BTreeSet<Edge> = tsg.loop_edges().collect();
        assert_eq!(witnessed, loop_edges);
        for w in &witnesses {
            assert!(w.verify(&g));
            assert_eq!(w.replica, ReplicaId(0));
        }
    }

    #[test]
    fn from_edges_round_trips() {
        let t = TimestampGraph::from_edges(ReplicaId(1), [edge(0, 1), edge(1, 0)]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(edge(0, 1)));
    }
}
