//! Identifier newtypes shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica (a vertex of the share graph).
///
/// Replicas are numbered `0..R`, matching the paper's `1..R` shifted to
/// zero-based indexing.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReplicaId(pub usize);

impl ReplicaId {
    /// Returns the zero-based index of this replica.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for ReplicaId {
    fn from(v: usize) -> Self {
        ReplicaId(v)
    }
}

/// Identifier of a shared read/write register.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RegisterId(pub u32);

impl RegisterId {
    /// Returns the zero-based index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for RegisterId {
    fn from(v: u32) -> Self {
        RegisterId(v)
    }
}

/// A directed edge `e_jk` of the share graph, from replica `from = j` to
/// replica `to = k`.
///
/// Share-graph edges always come in pairs (`e_jk ∈ E ⇔ e_kj ∈ E`,
/// Definition 3), but timestamp graphs contain *directed* edges and are not
/// necessarily symmetric (the paper's Figure 5b example), so the directed
/// form is the primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source replica (`j` in `e_jk`): the issuer of tracked updates.
    pub from: ReplicaId,
    /// Destination replica (`k` in `e_jk`).
    pub to: ReplicaId,
}

impl Edge {
    /// Creates the directed edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`; the share graph has no self loops.
    pub fn new(from: ReplicaId, to: ReplicaId) -> Self {
        assert_ne!(from, to, "share graph has no self loops");
        Edge { from, to }
    }

    /// The same edge with its direction reversed (`e_kj` for `e_jk`).
    pub fn reversed(self) -> Self {
        Edge {
            from: self.to,
            to: self.from,
        }
    }

    /// True if `r` is one of the two endpoints.
    pub fn touches(self, r: ReplicaId) -> bool {
        self.from == r || self.to == r
    }

    /// Canonical undirected representation: endpoints in ascending order.
    pub fn undirected(self) -> (ReplicaId, ReplicaId) {
        if self.from <= self.to {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e({}→{})", self.from.0, self.to.0)
    }
}

/// Convenience constructor for [`Edge`] from raw indices.
pub fn edge(from: usize, to: usize) -> Edge {
    Edge::new(ReplicaId(from), ReplicaId(to))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_reversal_round_trips() {
        let e = edge(2, 5);
        assert_eq!(e.reversed().reversed(), e);
        assert_eq!(e.reversed(), edge(5, 2));
    }

    #[test]
    fn edge_undirected_is_canonical() {
        assert_eq!(edge(5, 2).undirected(), edge(2, 5).undirected());
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let _ = edge(3, 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReplicaId(4).to_string(), "r4");
        assert_eq!(RegisterId(7).to_string(), "x7");
        assert_eq!(edge(1, 2).to_string(), "e(1→2)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(edge(0, 1) < edge(0, 2));
        assert!(edge(0, 9) < edge(1, 0));
    }
}
