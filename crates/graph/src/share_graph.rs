//! The share graph `G` (Definition 3).

use crate::{Edge, GraphError, RegSet, RegisterId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The share graph `G = (V, E)` of a partially replicated system
/// (Definition 3).
///
/// Vertex `i` is replica `i`, which stores the register set `X_i`; directed
/// edges `e_ij` and `e_ji` exist iff `X_ij = X_i ∩ X_j ≠ ∅`. The structure
/// caches `X_i`, every pairwise intersection `X_ij`, and adjacency lists.
///
/// Construct with [`ShareGraphBuilder`] or one of the generators in
/// [`crate::topologies`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareGraph {
    /// `X_i` for each replica.
    regs: Vec<RegSet>,
    /// Size of the register universe.
    num_registers: usize,
    /// `X_ij` for each ordered pair, flattened `i * R + j`. Entry `(i, i)` is
    /// `X_i` itself.
    shared: Vec<RegSet>,
    /// Sorted neighbor lists.
    adj: Vec<Vec<ReplicaId>>,
    /// `C(x)`: holders of each register, sorted.
    holders: Vec<Vec<ReplicaId>>,
}

impl ShareGraph {
    /// Builds a share graph directly from per-replica register assignments.
    ///
    /// The register universe is `0..max_register+1`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NoReplicas`] if `assignments` is empty.
    pub fn from_assignments(assignments: Vec<Vec<RegisterId>>) -> Result<ShareGraph, GraphError> {
        if assignments.is_empty() {
            return Err(GraphError::NoReplicas);
        }
        let num_registers = assignments
            .iter()
            .flatten()
            .map(|r| r.index() + 1)
            .max()
            .unwrap_or(0);
        let regs: Vec<RegSet> = assignments
            .into_iter()
            .map(|a| RegSet::from_iter_in(num_registers, a))
            .collect();
        let r = regs.len();

        let mut shared = Vec::with_capacity(r * r);
        for i in 0..r {
            for j in 0..r {
                shared.push(regs[i].intersection(&regs[j]));
            }
        }

        let mut adj = vec![Vec::new(); r];
        for i in 0..r {
            for j in 0..r {
                if i != j && !shared[i * r + j].is_empty() {
                    adj[i].push(ReplicaId(j));
                }
            }
        }

        let mut holders = vec![Vec::new(); num_registers];
        for (i, x) in regs.iter().enumerate() {
            for reg in x.iter() {
                holders[reg.index()].push(ReplicaId(i));
            }
        }

        Ok(ShareGraph {
            regs,
            num_registers,
            shared,
            adj,
            holders,
        })
    }

    /// The per-replica register assignments, in replica order — the inverse
    /// of [`ShareGraph::from_assignments`], used to ship the topology
    /// configuration over the wire (`prcc-service`) and to clone graphs
    /// across process boundaries.
    pub fn assignments(&self) -> Vec<Vec<RegisterId>> {
        self.regs.iter().map(|x| x.iter().collect()).collect()
    }

    /// Number of replicas `R`.
    pub fn num_replicas(&self) -> usize {
        self.regs.len()
    }

    /// Size of the register universe (registers are `0..num_registers`).
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// Iterator over all replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.num_replicas()).map(ReplicaId)
    }

    /// Iterator over all register ids in the universe.
    pub fn registers(&self) -> impl Iterator<Item = RegisterId> + '_ {
        (0..self.num_registers as u32).map(RegisterId)
    }

    /// The register set `X_i` stored at replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn registers_of(&self, i: ReplicaId) -> &RegSet {
        &self.regs[i.index()]
    }

    /// True if replica `i` stores register `x`.
    pub fn stores(&self, i: ReplicaId, x: RegisterId) -> bool {
        self.regs[i.index()].contains(x)
    }

    /// The shared set `X_ij = X_i ∩ X_j`.
    ///
    /// For `i == j` this is `X_i`.
    pub fn shared(&self, i: ReplicaId, j: ReplicaId) -> &RegSet {
        &self.shared[i.index() * self.num_replicas() + j.index()]
    }

    /// The shared set along a directed edge (`X_{e.from, e.to}`).
    pub fn shared_on(&self, e: Edge) -> &RegSet {
        self.shared(e.from, e.to)
    }

    /// True if `e_ij ∈ E`, i.e. `X_ij ≠ ∅` and `i ≠ j`.
    pub fn are_adjacent(&self, i: ReplicaId, j: ReplicaId) -> bool {
        i != j && !self.shared(i, j).is_empty()
    }

    /// True if the directed edge is in `E`.
    pub fn has_edge(&self, e: Edge) -> bool {
        self.are_adjacent(e.from, e.to)
    }

    /// Sorted neighbors of replica `i` in the share graph.
    pub fn neighbors(&self, i: ReplicaId) -> &[ReplicaId] {
        &self.adj[i.index()]
    }

    /// Degree of `i` (number of neighbors, `N_i` in the paper's Section 4).
    pub fn degree(&self, i: ReplicaId) -> usize {
        self.adj[i.index()].len()
    }

    /// `C(x)`: the sorted set of replicas storing register `x`
    /// (Definition 9's notation).
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the universe.
    pub fn holders(&self, x: RegisterId) -> &[ReplicaId] {
        &self.holders[x.index()]
    }

    /// Iterator over all directed edges of `E` (both orientations).
    pub fn directed_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.replicas()
            .flat_map(move |i| self.neighbors(i).iter().map(move |&j| Edge::new(i, j)))
    }

    /// Iterator over undirected edges, each reported once with
    /// `from < to`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.directed_edges().filter(|e| e.from < e.to)
    }

    /// Number of directed edges `|E|`.
    pub fn num_directed_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// True if every replica stores every register (full replication).
    pub fn is_full_replication(&self) -> bool {
        self.regs.iter().all(|x| x.len() == self.num_registers)
    }

    /// True if the share graph, viewed undirected, contains no cycle.
    ///
    /// Trees/forests are the topologies for which the paper's Section 4
    /// closed form `2 N_i log m` applies.
    pub fn is_forest(&self) -> bool {
        let r = self.num_replicas();
        let mut parent: Vec<Option<ReplicaId>> = vec![None; r];
        let mut seen = vec![false; r];
        for start in 0..r {
            if seen[start] {
                continue;
            }
            let mut stack = vec![ReplicaId(start)];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if Some(v) == parent[u.index()] {
                        continue;
                    }
                    if seen[v.index()] {
                        return false;
                    }
                    seen[v.index()] = true;
                    parent[v.index()] = Some(u);
                    stack.push(v);
                }
            }
        }
        true
    }

    /// True if the share graph, viewed undirected, is connected.
    pub fn is_connected(&self) -> bool {
        let r = self.num_replicas();
        if r == 0 {
            return true;
        }
        let mut seen = vec![false; r];
        let mut stack = vec![ReplicaId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == r
    }

    /// Union of `X_l` over the given replicas, a helper for Definition 4's
    /// conditions.
    pub fn union_registers<I: IntoIterator<Item = ReplicaId>>(&self, replicas: I) -> RegSet {
        let mut acc = RegSet::new(self.num_registers);
        for r in replicas {
            acc.union_with(&self.regs[r.index()]);
        }
        acc
    }

    /// The replicas an update to `x` issued at `i` must be sent to:
    /// every *other* replica storing `x` (step 2(iii) of the prototype).
    pub fn recipients(&self, i: ReplicaId, x: RegisterId) -> Vec<ReplicaId> {
        self.holders(x)
            .iter()
            .copied()
            .filter(|&k| k != i)
            .collect()
    }
}

impl fmt::Debug for ShareGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("ShareGraph");
        d.field("replicas", &self.num_replicas());
        d.field("registers", &self.num_registers);
        for i in self.replicas() {
            d.field(&format!("X_{}", i.index()), &self.regs[i.index()]);
        }
        d.finish()
    }
}

/// Incremental builder for [`ShareGraph`].
///
/// # Example
///
/// ```
/// use prcc_graph::{ShareGraphBuilder, RegisterId};
/// let g = ShareGraphBuilder::new()
///     .replica([RegisterId(0)])
///     .replica([RegisterId(0), RegisterId(1)])
///     .build()?;
/// assert_eq!(g.num_replicas(), 2);
/// # Ok::<(), prcc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShareGraphBuilder {
    assignments: Vec<Vec<RegisterId>>,
}

impl ShareGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a replica storing the given registers, returning the builder
    /// for chaining.
    pub fn replica<I: IntoIterator<Item = RegisterId>>(mut self, regs: I) -> Self {
        self.assignments.push(regs.into_iter().collect());
        self
    }

    /// Appends a replica storing the given raw register indices.
    pub fn replica_raw<I: IntoIterator<Item = u32>>(self, regs: I) -> Self {
        self.replica(regs.into_iter().map(RegisterId))
    }

    /// Number of replicas added so far.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no replica has been added.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Finalizes the share graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NoReplicas`] if no replica was added.
    pub fn build(self) -> Result<ShareGraph, GraphError> {
        ShareGraph::from_assignments(self.assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::edge;

    /// Figure 3's example: X1={x}, X2={x,y}, X3={y,z}, X4={z} (0-indexed
    /// registers x=0, y=1, z=2).
    fn figure3() -> ShareGraph {
        ShareGraphBuilder::new()
            .replica_raw([0])
            .replica_raw([0, 1])
            .replica_raw([1, 2])
            .replica_raw([2])
            .build()
            .unwrap()
    }

    #[test]
    fn figure3_edges_match_paper() {
        let g = figure3();
        assert_eq!(g.num_replicas(), 4);
        assert_eq!(g.num_registers(), 3);
        // X23 = {y}, X14 = ∅ (0-indexed: shared(1,2) = {1}, shared(0,3) = ∅).
        assert_eq!(g.shared(ReplicaId(1), ReplicaId(2)).iter().count(), 1);
        assert!(g.shared(ReplicaId(1), ReplicaId(2)).contains(RegisterId(1)));
        assert!(g.shared(ReplicaId(0), ReplicaId(3)).is_empty());
        // Path graph 1-2-3-4.
        assert!(g.are_adjacent(ReplicaId(0), ReplicaId(1)));
        assert!(g.are_adjacent(ReplicaId(1), ReplicaId(2)));
        assert!(g.are_adjacent(ReplicaId(2), ReplicaId(3)));
        assert!(!g.are_adjacent(ReplicaId(0), ReplicaId(2)));
        assert!(!g.are_adjacent(ReplicaId(0), ReplicaId(3)));
        assert_eq!(g.num_directed_edges(), 6);
        assert!(g.is_forest());
        assert!(g.is_connected());
        assert!(!g.is_full_replication());
    }

    #[test]
    fn edges_always_appear_in_pairs() {
        let g = figure3();
        for e in g.directed_edges() {
            assert!(g.has_edge(e.reversed()), "missing reverse of {e}");
        }
    }

    #[test]
    fn holders_and_recipients() {
        let g = figure3();
        assert_eq!(g.holders(RegisterId(0)), &[ReplicaId(0), ReplicaId(1)]);
        assert_eq!(g.holders(RegisterId(1)), &[ReplicaId(1), ReplicaId(2)]);
        assert_eq!(
            g.recipients(ReplicaId(1), RegisterId(0)),
            vec![ReplicaId(0)]
        );
        assert_eq!(
            g.recipients(ReplicaId(0), RegisterId(0)),
            vec![ReplicaId(1)]
        );
    }

    #[test]
    fn degree_and_neighbors() {
        let g = figure3();
        assert_eq!(g.degree(ReplicaId(0)), 1);
        assert_eq!(g.degree(ReplicaId(1)), 2);
        assert_eq!(g.neighbors(ReplicaId(1)), &[ReplicaId(0), ReplicaId(2)]);
    }

    #[test]
    fn full_replication_detection() {
        let g = ShareGraphBuilder::new()
            .replica_raw([0, 1])
            .replica_raw([0, 1])
            .replica_raw([0, 1])
            .build()
            .unwrap();
        assert!(g.is_full_replication());
        assert!(!g.is_forest()); // triangle
        assert_eq!(g.num_directed_edges(), 6);
    }

    #[test]
    fn empty_builder_errors() {
        assert_eq!(
            ShareGraphBuilder::new().build().unwrap_err(),
            GraphError::NoReplicas
        );
    }

    #[test]
    fn union_registers_helper() {
        let g = figure3();
        let u = g.union_registers([ReplicaId(1), ReplicaId(2)]);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = ShareGraphBuilder::new()
            .replica_raw([0])
            .replica_raw([0])
            .replica_raw([1])
            .replica_raw([1])
            .build()
            .unwrap();
        assert!(!g.is_connected());
        assert!(g.is_forest());
    }

    #[test]
    fn shared_on_directed_edge() {
        let g = figure3();
        assert_eq!(
            g.shared_on(edge(1, 2)),
            g.shared(ReplicaId(1), ReplicaId(2))
        );
    }

    #[test]
    fn debug_output_mentions_assignments() {
        let s = format!("{:?}", figure3());
        assert!(s.contains("X_0"));
        assert!(s.contains("replicas"));
    }
}
