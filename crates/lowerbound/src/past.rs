//! Causal pasts as explicit update sets.

use prcc_graph::{Edge, RegisterId, ReplicaId, ShareGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An update identified by issuer, register and per-(issuer, register)
/// sequence number — enough structure to evaluate the `S|e` restrictions of
/// Section 4 without carrying values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AbstractUpdate {
    /// The issuing replica.
    pub issuer: ReplicaId,
    /// The written register.
    pub register: RegisterId,
    /// 1-based issue index among this issuer's updates to this register.
    pub seq: u64,
}

impl fmt::Display for AbstractUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},#{}⟩", self.issuer, self.register, self.seq)
    }
}

/// A causal past `S`: a set of updates (Definition 6's vertex set).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct CausalPast {
    updates: BTreeSet<AbstractUpdate>,
}

impl CausalPast {
    /// The empty past.
    pub fn new() -> Self {
        CausalPast::default()
    }

    /// Inserts an update.
    pub fn insert(&mut self, u: AbstractUpdate) -> bool {
        self.updates.insert(u)
    }

    /// Membership test.
    pub fn contains(&self, u: &AbstractUpdate) -> bool {
        self.updates.contains(u)
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates updates in order.
    pub fn iter(&self) -> impl Iterator<Item = &AbstractUpdate> + '_ {
        self.updates.iter()
    }

    /// `S|e_jk`: the updates in `S` issued by `j` on registers in `X_jk`
    /// (empty for non-edges, matching the paper's convention).
    pub fn restrict(&self, g: &ShareGraph, e: Edge) -> BTreeSet<AbstractUpdate> {
        if !g.has_edge(e) {
            return BTreeSet::new();
        }
        let shared = g.shared_on(e);
        self.updates
            .iter()
            .filter(|u| u.issuer == e.from && shared.contains(u.register))
            .copied()
            .collect()
    }

    /// Count version of [`CausalPast::restrict`].
    pub fn count_on(&self, g: &ShareGraph, e: Edge) -> usize {
        self.restrict(g, e).len()
    }

    /// True if `self|e ⊊ other|e` (strict inclusion on the edge).
    pub fn strictly_below_on(&self, other: &CausalPast, g: &ShareGraph, e: Edge) -> bool {
        let a = self.restrict(g, e);
        let b = other.restrict(g, e);
        a.len() < b.len() && a.is_subset(&b)
    }
}

impl FromIterator<AbstractUpdate> for CausalPast {
    fn from_iter<T: IntoIterator<Item = AbstractUpdate>>(iter: T) -> Self {
        CausalPast {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::{edge, topologies};

    fn u(issuer: usize, register: u32, seq: u64) -> AbstractUpdate {
        AbstractUpdate {
            issuer: ReplicaId(issuer),
            register: RegisterId(register),
            seq,
        }
    }

    #[test]
    fn restriction_filters_by_issuer_and_register() {
        let g = topologies::figure3();
        // Register 0 shared by replicas 0,1; register 1 by 1,2.
        let s: CausalPast = [u(1, 0, 1), u(1, 1, 1), u(0, 0, 1)].into_iter().collect();
        assert_eq!(s.count_on(&g, edge(1, 0)), 1, "issuer 1 on X_10 = {{0}}");
        assert_eq!(s.count_on(&g, edge(1, 2)), 1, "issuer 1 on X_12 = {{1}}");
        assert_eq!(s.count_on(&g, edge(0, 1)), 1);
        assert_eq!(s.count_on(&g, edge(0, 3)), 0, "non-edge restricts to ∅");
    }

    #[test]
    fn strict_inclusion() {
        let g = topologies::figure3();
        let s1: CausalPast = [u(0, 0, 1)].into_iter().collect();
        let s2: CausalPast = [u(0, 0, 1), u(0, 0, 2)].into_iter().collect();
        assert!(s1.strictly_below_on(&s2, &g, edge(0, 1)));
        assert!(!s2.strictly_below_on(&s1, &g, edge(0, 1)));
        assert!(!s1.strictly_below_on(&s1, &g, edge(0, 1)));
        // Incomparable sets are not strictly below.
        let s3: CausalPast = [u(0, 0, 2)].into_iter().collect();
        assert!(!s1.strictly_below_on(&s3, &g, edge(0, 1)));
    }

    #[test]
    fn display_and_set_ops() {
        let mut s = CausalPast::new();
        assert!(s.is_empty());
        assert!(s.insert(u(0, 0, 1)));
        assert!(!s.insert(u(0, 0, 1)));
        assert!(s.contains(&u(0, 0, 1)));
        assert_eq!(s.len(), 1);
        assert_eq!(u(0, 0, 1).to_string(), "⟨r0,x0,#1⟩");
    }
}
