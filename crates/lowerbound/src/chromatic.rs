//! Chromatic numbers of (small) conflict graphs.
//!
//! Theorem 15: `σ_i(m) ≥ χ(H_i)`. Over an explicitly generated family the
//! induced subgraph's chromatic number is still a valid lower bound (any
//! proper coloring of `H_i` restricts to one of the subgraph).

/// Greedy (Welsh–Powell order) coloring — an upper bound on `χ`.
pub fn greedy_coloring(adj: &[Vec<bool>]) -> usize {
    let n = adj.len();
    if n == 0 {
        return 0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(adj[v].iter().filter(|&&b| b).count()));
    let mut color = vec![usize::MAX; n];
    let mut used = 0;
    for &v in &order {
        let mut taken: Vec<bool> = vec![false; used + 1];
        for u in 0..n {
            if adj[v][u] && color[u] != usize::MAX && color[u] < taken.len() {
                taken[color[u]] = true;
            }
        }
        let c = (0..).find(|&c| c >= taken.len() || !taken[c]).unwrap();
        color[v] = c;
        used = used.max(c + 1);
    }
    used
}

/// A large clique found greedily — a lower bound on `χ`.
pub fn greedy_clique(adj: &[Vec<bool>]) -> usize {
    let n = adj.len();
    let mut best = 0;
    for start in 0..n {
        let mut clique = vec![start];
        for v in (0..n).filter(|&v| v != start) {
            if clique.iter().all(|&u| adj[u][v]) {
                clique.push(v);
            }
        }
        best = best.max(clique.len());
    }
    best
}

/// Exact chromatic number by branch and bound; intended for graphs of at
/// most ~16 vertices.
///
/// # Panics
///
/// Panics if the graph has more than 24 vertices (exponential blow-up
/// guard).
pub fn exact_chromatic(adj: &[Vec<bool>]) -> usize {
    let n = adj.len();
    assert!(n <= 24, "exact chromatic number limited to 24 vertices");
    if n == 0 {
        return 0;
    }
    let lower = greedy_clique(adj);
    let upper = greedy_coloring(adj);
    let mut k = lower;
    while k < upper {
        if colorable(adj, k) {
            return k;
        }
        k += 1;
    }
    upper
}

fn colorable(adj: &[Vec<bool>], k: usize) -> bool {
    fn rec(adj: &[Vec<bool>], colors: &mut Vec<usize>, v: usize, k: usize) -> bool {
        if v == adj.len() {
            return true;
        }
        // Symmetry breaking: vertex v may only use colors 0..=min(v, k−1)…
        let cap = k.min(v + 1);
        for c in 0..cap {
            if (0..v).all(|u| !adj[v][u] || colors[u] != c) {
                colors[v] = c;
                if rec(adj, colors, v + 1, k) {
                    return true;
                }
            }
        }
        false
    }
    rec(adj, &mut vec![usize::MAX; adj.len()], 0, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Vec<Vec<bool>> {
        (0..n).map(|a| (0..n).map(|b| a != b).collect()).collect()
    }

    fn cycle(n: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| (a + 1) % n == b || (b + 1) % n == a)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn complete_graphs() {
        for n in 1..8 {
            assert_eq!(exact_chromatic(&complete(n)), n);
            assert_eq!(greedy_clique(&complete(n)), n);
            assert_eq!(greedy_coloring(&complete(n)), n);
        }
    }

    #[test]
    fn odd_and_even_cycles() {
        assert_eq!(exact_chromatic(&cycle(5)), 3);
        assert_eq!(exact_chromatic(&cycle(6)), 2);
        assert_eq!(exact_chromatic(&cycle(7)), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(exact_chromatic(&[]), 0);
        let edgeless = vec![vec![false; 5]; 5];
        assert_eq!(exact_chromatic(&edgeless), 1);
        assert_eq!(greedy_clique(&edgeless), 1);
    }

    #[test]
    fn greedy_bounds_bracket_exact() {
        let g = cycle(9);
        let lo = greedy_clique(&g);
        let hi = greedy_coloring(&g);
        let chi = exact_chromatic(&g);
        assert!(lo <= chi && chi <= hi);
    }
}
