//! Timestamp-space lower bounds (Section 4, Appendix C).
//!
//! Definition 12 measures `σ_i(m)`: the minimum number of distinct
//! timestamps replica `i` must be able to assign over all executions in
//! which each replica issues up to `m` updates, given Constraint 1
//! (timestamps are a function of the causal past). Lemma 14 shows
//! *conflicting* causal pasts (Definition 13) require distinct timestamps,
//! so any pairwise-conflicting family is a clique in the conflict graph and
//! `σ_i(m) ≥ χ(H_i) ≥ |family|` (Theorem 15).
//!
//! This crate makes that computational:
//!
//! * [`CausalPast`] — causal pasts as explicit update sets with the `S|e`
//!   per-edge restriction.
//! * [`conflict`] — a literal implementation of Definition 13, including
//!   the simple-loop case with its equality and non-emptiness side
//!   conditions.
//! * [`ExecutionBuilder`] — scripted executions, validated for causal
//!   consistency by the oracle, whose terminal causal pasts are *feasible*
//!   by construction.
//! * [`families`] — explicit pairwise-conflicting families: the incident
//!   family (any connected graph, size `c^(2·N_i)`), the ring family
//!   (size `c^(2n)`), and the full-replication family (size `c^R`) —
//!   matching the paper's closed forms `2 N_i log m`, `2n log m` and
//!   `R log m` bits.
//! * [`chromatic`] — exact (small) and greedy chromatic numbers of conflict
//!   graphs over a family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod chromatic;
mod conflict;
pub mod families;
mod past;

pub use builder::ExecutionBuilder;
pub use conflict::{conflict, conflict_graph};
pub use past::{AbstractUpdate, CausalPast};

/// Closed-form bit lower bounds from the paper's Section 4 discussion.
pub mod closed_forms {
    /// Tree share graph: `2 N_i · log2(m)` bits for replica `i` with `N_i`
    /// neighbors.
    pub fn tree_bits(n_i: usize, m: u64) -> f64 {
        2.0 * n_i as f64 * (m as f64).log2()
    }

    /// Cycle of `n` replicas: `2n · log2(m)` bits.
    pub fn cycle_bits(n: usize, m: u64) -> f64 {
        2.0 * n as f64 * (m as f64).log2()
    }

    /// Full replication with `R` replicas: `R · log2(m)` bits (the vector
    /// timestamp bound: timestamp space `m^R`).
    pub fn clique_bits(r: usize, m: u64) -> f64 {
        r as f64 * (m as f64).log2()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formulas() {
            assert_eq!(tree_bits(3, 4), 12.0);
            assert_eq!(cycle_bits(5, 2), 10.0);
            assert_eq!(clique_bits(4, 16), 16.0);
        }
    }
}
