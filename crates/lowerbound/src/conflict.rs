//! The conflict relation on causal pasts (Definition 13).

use crate::past::CausalPast;
use prcc_graph::{Edge, ReplicaId, ShareGraph};

/// Decides whether two causal pasts of replica `i` *conflict*
/// (Definition 13), in which case Lemma 14 forces distinct timestamps.
///
/// Conditions:
///
/// 1. `S1|e ≠ ∅ ≠ S2|e` for every edge `e ∈ E`, and
/// 2. some edge `e` with `S1|e ⊊ S2|e` (or symmetrically `S2|e ⊊ S1|e`)
///    that is incident at `i`, or sits as `e_{r1, ls}` on a simple loop
///    `(i, l_1 … l_s, r_1 … r_t, i)` with
///    * `S1|e_{rp,lq} = S2|e_{rp,lq}` for every other `(r_p, l_q)` pair
///      (with `r_{t+1} = i`), and
///    * `Sx|e_{rp,rp+1} − ∪_q Sx|e_{rp,lq} ≠ ∅` for `1 ≤ p ≤ t`, `x = 1,2`.
pub fn conflict(g: &ShareGraph, i: ReplicaId, s1: &CausalPast, s2: &CausalPast) -> bool {
    // Condition 1.
    for e in g.directed_edges() {
        if s1.count_on(g, e) == 0 || s2.count_on(g, e) == 0 {
            return false;
        }
    }
    // Condition 2, tried in both orders.
    directional_conflict(g, i, s1, s2) || directional_conflict(g, i, s2, s1)
}

fn directional_conflict(g: &ShareGraph, i: ReplicaId, s1: &CausalPast, s2: &CausalPast) -> bool {
    for e in g.directed_edges() {
        if !s1.strictly_below_on(s2, g, e) {
            continue;
        }
        if e.touches(i) {
            return true;
        }
        if loop_condition(g, i, e, s1, s2) {
            return true;
        }
    }
    false
}

/// Searches for a simple loop `(i, l_1 … l_s, r_1 … r_t, i)` with
/// `e = e_{r1, ls}` satisfying Definition 13's side conditions. The loop
/// orientation is: the `l`-chain leaves `i` and ends at `l_s = e.to`; the
/// `r`-chain starts at `r_1 = e.from` and returns to `i`.
fn loop_condition(g: &ShareGraph, i: ReplicaId, e: Edge, s1: &CausalPast, s2: &CausalPast) -> bool {
    let (r1, ls) = (e.from, e.to);
    if r1 == i || ls == i {
        return false;
    }
    // Enumerate l-chains: simple paths i → ls avoiding r1.
    let mut l_chain = vec![];
    let mut on = vec![false; g.num_replicas()];
    on[i.index()] = true;
    dfs_l(g, i, ls, r1, &mut l_chain, &mut on, &mut |l_chain, on| {
        // For this l-chain, enumerate r-chains r1 → i disjoint from it.
        let mut r_chain = vec![r1];
        let mut on2 = on.to_vec();
        on2[r1.index()] = true;
        dfs_r(g, i, &mut r_chain, &mut on2, &mut |r_chain| {
            check_side_conditions(g, i, e, s1, s2, l_chain, r_chain)
        })
    })
}

fn dfs_l(
    g: &ShareGraph,
    u: ReplicaId,
    target: ReplicaId,
    forbidden: ReplicaId,
    l_chain: &mut Vec<ReplicaId>,
    on: &mut Vec<bool>,
    visit: &mut impl FnMut(&[ReplicaId], &[bool]) -> bool,
) -> bool {
    for &v in g.neighbors(u) {
        if v == forbidden || on[v.index()] {
            continue;
        }
        if v == target {
            l_chain.push(v);
            on[v.index()] = true;
            let hit = visit(l_chain, on);
            on[v.index()] = false;
            l_chain.pop();
            if hit {
                return true;
            }
            continue;
        }
        l_chain.push(v);
        on[v.index()] = true;
        let hit = dfs_l(g, v, target, forbidden, l_chain, on, visit);
        on[v.index()] = false;
        l_chain.pop();
        if hit {
            return true;
        }
    }
    false
}

fn dfs_r(
    g: &ShareGraph,
    i: ReplicaId,
    r_chain: &mut Vec<ReplicaId>,
    on: &mut Vec<bool>,
    visit: &mut impl FnMut(&[ReplicaId]) -> bool,
) -> bool {
    let u = *r_chain.last().unwrap();
    if g.are_adjacent(u, i) && visit(r_chain) {
        return true;
    }
    for &v in g.neighbors(u) {
        if on[v.index()] {
            continue;
        }
        r_chain.push(v);
        on[v.index()] = true;
        let hit = dfs_r(g, i, r_chain, on, visit);
        on[v.index()] = false;
        r_chain.pop();
        if hit {
            return true;
        }
    }
    false
}

fn check_side_conditions(
    g: &ShareGraph,
    i: ReplicaId,
    e: Edge,
    s1: &CausalPast,
    s2: &CausalPast,
    l_chain: &[ReplicaId],
    r_chain: &[ReplicaId],
) -> bool {
    // (1): equality on every cross edge e_{rp,lq} ≠ e, with r_{t+1} = i.
    let mut r_ext: Vec<ReplicaId> = r_chain.to_vec();
    r_ext.push(i);
    for &rp in &r_ext {
        for &lq in l_chain {
            let cross = Edge::new(rp, lq);
            if cross == e || !g.has_edge(cross) {
                continue;
            }
            if s1.restrict(g, cross) != s2.restrict(g, cross) {
                return false;
            }
        }
    }
    // (2): for 1 ≤ p ≤ t (r_{t+1} = i):
    // Sx|e_{rp,rp+1} − ∪_q Sx|e_{rp,lq} ≠ ∅.
    for p in 0..r_chain.len() {
        let rp = r_chain[p];
        let rp1 = if p + 1 < r_chain.len() {
            r_chain[p + 1]
        } else {
            i
        };
        let along = Edge::new(rp, rp1);
        for s in [s1, s2] {
            let mut set = s.restrict(g, along);
            for &lq in l_chain {
                let cross = Edge::new(rp, lq);
                if g.has_edge(cross) {
                    for u in s.restrict(g, cross) {
                        set.remove(&u);
                    }
                }
            }
            if set.is_empty() {
                return false;
            }
        }
    }
    true
}

/// Builds the conflict graph over a family of causal pasts: adjacency
/// matrix entry `(a, b)` is true iff the pasts conflict.
pub fn conflict_graph(g: &ShareGraph, i: ReplicaId, family: &[CausalPast]) -> Vec<Vec<bool>> {
    let n = family.len();
    let mut adj = vec![vec![false; n]; n];
    for a in 0..n {
        for b in a + 1..n {
            if conflict(g, i, &family[a], &family[b]) {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::past::AbstractUpdate;
    use prcc_graph::{edge, topologies, RegisterId};

    fn u(issuer: usize, register: u32, seq: u64) -> AbstractUpdate {
        AbstractUpdate {
            issuer: ReplicaId(issuer),
            register: RegisterId(register),
            seq,
        }
    }

    /// Base past with one update on every directed edge of a graph.
    fn base(g: &ShareGraph) -> CausalPast {
        let mut s = CausalPast::new();
        for e in g.directed_edges() {
            let reg = g.shared_on(e).first().unwrap();
            s.insert(AbstractUpdate {
                issuer: e.from,
                register: reg,
                seq: 1,
            });
        }
        s
    }

    use prcc_graph::ShareGraph;

    #[test]
    fn incident_edge_difference_conflicts() {
        let g = topologies::line(3);
        let i = ReplicaId(1);
        let s1 = base(&g);
        let mut s2 = s1.clone();
        s2.insert(u(0, 0, 2)); // one more update on e_01 (incident at 1).
        assert!(conflict(&g, i, &s1, &s2));
        assert!(conflict(&g, i, &s2, &s1), "symmetric");
    }

    #[test]
    fn condition1_requires_all_edges_nonempty() {
        let g = topologies::line(3);
        let i = ReplicaId(1);
        let mut s1 = CausalPast::new();
        s1.insert(u(0, 0, 1)); // nothing on the 1–2 edge.
        let mut s2 = s1.clone();
        s2.insert(u(0, 0, 2));
        assert!(!conflict(&g, i, &s1, &s2));
    }

    #[test]
    fn equal_pasts_do_not_conflict() {
        let g = topologies::ring(4);
        let s = base(&g);
        assert!(!conflict(&g, ReplicaId(0), &s, &s.clone()));
    }

    #[test]
    fn ring_far_edge_conflicts_via_loop() {
        // On a ring, a difference on a non-incident edge (with everything
        // else equal) conflicts through the whole-ring loop.
        let g = topologies::ring(4);
        let i = ReplicaId(0);
        let s1 = base(&g);
        let mut s2 = s1.clone();
        // Edge e_{2→3} carries register 2 (shared by replicas 2,3).
        s2.insert(u(2, 2, 2));
        assert!(s1.strictly_below_on(&s2, &g, edge(2, 3)));
        assert!(conflict(&g, i, &s1, &s2));
    }

    #[test]
    fn tree_far_edge_does_not_conflict() {
        // On a line, a difference on a far edge has no loop to carry it; no
        // incident difference either → no conflict. (This is exactly why
        // trees only need incident counters.)
        let g = topologies::line(4);
        let i = ReplicaId(0);
        let s1 = base(&g);
        let mut s2 = s1.clone();
        s2.insert(u(2, 2, 2)); // far edge 2–3
        assert!(!conflict(&g, i, &s1, &s2));
    }

    #[test]
    fn counterexample1_jk_difference_does_not_conflict_at_i() {
        // Definition 13 mirrors the (i, e_jk)-loop analysis: in
        // counterexample 1 a difference on the j–k edge alone cannot
        // conflict at i (the y/z chords break condition (2)).
        let (g, r) = topologies::counterexample1();
        let s1 = base(&g);
        let mut s2 = s1.clone();
        s2.insert(AbstractUpdate {
            issuer: r.j,
            register: r.x,
            seq: 2,
        });
        assert!(!conflict(&g, r.i, &s1, &s2));
        // But the same difference *does* conflict at k (incident).
        assert!(conflict(&g, r.k, &s1, &s2));
    }

    #[test]
    fn conflict_graph_structure() {
        let g = topologies::line(3);
        let i = ReplicaId(1);
        let s1 = base(&g);
        let mut s2 = s1.clone();
        s2.insert(u(0, 0, 2));
        let mut s3 = s2.clone();
        s3.insert(u(0, 0, 3));
        let fam = vec![s1, s2, s3];
        let adj = conflict_graph(&g, i, &fam);
        // Chain of strict inclusions: all pairs conflict (clique).
        for (a, row) in adj.iter().enumerate() {
            for (b, &cell) in row.iter().enumerate() {
                assert_eq!(cell, a != b, "({a},{b})");
            }
        }
    }
}
