//! Scripted executions whose terminal causal pasts are feasible by
//! construction.

use crate::past::{AbstractUpdate, CausalPast};
use prcc_checker::{Oracle, UpdateId};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};

/// Builds an execution step by step (issue / apply events), checking causal
/// consistency with the oracle as it goes, and extracts replica causal
/// pasts as [`CausalPast`] values.
///
/// Because every issued update is validated by the oracle's safety check on
/// application, any causal past extracted from a fully-applied builder run
/// is *feasible* — realizable by a causally consistent execution — which is
/// what Definition 12's `σ_i(m)` quantifies over.
pub struct ExecutionBuilder {
    g: ShareGraph,
    oracle: Oracle,
    /// Per (issuer, register) sequence counters.
    seq: Vec<u64>,
    /// Metadata per oracle update id.
    updates: Vec<AbstractUpdate>,
    /// Per-replica issue counts (for the ≤ m budget of Definition 12).
    issued: Vec<u64>,
}

impl ExecutionBuilder {
    /// Starts an empty execution.
    pub fn new(g: &ShareGraph) -> Self {
        ExecutionBuilder {
            g: g.clone(),
            oracle: Oracle::new(g),
            seq: vec![0; g.num_replicas() * g.num_registers()],
            updates: Vec::new(),
            issued: vec![0; g.num_replicas()],
        }
    }

    /// Replica `j` issues an update to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `j` does not store `x`.
    pub fn issue(&mut self, j: ReplicaId, x: RegisterId) -> UpdateId {
        assert!(self.g.stores(j, x), "{j} does not store {x}");
        let id = self.oracle.on_issue(j, x);
        let slot = j.index() * self.g.num_registers() + x.index();
        self.seq[slot] += 1;
        self.updates.push(AbstractUpdate {
            issuer: j,
            register: x,
            seq: self.seq[slot],
        });
        self.issued[j.index()] += 1;
        id
    }

    /// Replica `k` applies a previously issued update.
    ///
    /// # Panics
    ///
    /// Panics if the application violates causal safety — scripts used for
    /// lower-bound families must be consistent, so a panic indicates a bug
    /// in the script.
    pub fn apply(&mut self, k: ReplicaId, u: UpdateId) {
        self.oracle
            .on_apply(k, u)
            .unwrap_or_else(|v| panic!("script is not causally consistent: {v}"));
    }

    /// Issues at `j` and immediately applies at every other holder —
    /// the "global sequential, immediate full delivery" schedule that is
    /// trivially causally consistent.
    pub fn issue_and_broadcast(&mut self, j: ReplicaId, x: RegisterId) -> UpdateId {
        let id = self.issue(j, x);
        for k in self.g.recipients(j, x) {
            self.apply(k, id);
        }
        id
    }

    /// The causal past of replica `i` (Definition 6's set `S`).
    pub fn causal_past(&self, i: ReplicaId) -> CausalPast {
        self.oracle
            .replica_causal_past(i)
            .into_iter()
            .map(|u| self.updates[u.0 as usize])
            .collect()
    }

    /// Updates issued by `j` so far.
    pub fn issued_by(&self, j: ReplicaId) -> u64 {
        self.issued[j.index()]
    }

    /// Largest per-replica issue count — the `m` of Definition 12 this
    /// execution fits in.
    pub fn max_issued(&self) -> u64 {
        self.issued.iter().copied().max().unwrap_or(0)
    }

    /// The oracle, for direct queries.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    #[test]
    fn broadcast_keeps_everything_consistent() {
        let g = topologies::ring(4);
        let mut b = ExecutionBuilder::new(&g);
        for p in 0..4 {
            let i = ReplicaId(p);
            for x in g.registers_of(i).iter() {
                b.issue_and_broadcast(i, x);
            }
        }
        assert!(b.oracle().check_liveness().is_empty());
        assert_eq!(b.max_issued(), 2);
    }

    #[test]
    fn causal_past_accumulates_transitively() {
        let g = topologies::line(3);
        let mut b = ExecutionBuilder::new(&g);
        b.issue_and_broadcast(ReplicaId(0), RegisterId(0));
        b.issue_and_broadcast(ReplicaId(1), RegisterId(1));
        // Replica 2 applied r1's update, whose past contains r0's.
        let past = b.causal_past(ReplicaId(2));
        assert_eq!(past.len(), 2);
        assert_eq!(b.issued_by(ReplicaId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "not causally consistent")]
    fn bad_script_panics() {
        let g = topologies::clique_full(3, 1);
        let mut b = ExecutionBuilder::new(&g);
        let u0 = b.issue(ReplicaId(0), RegisterId(0));
        b.apply(ReplicaId(1), u0);
        let u1 = b.issue(ReplicaId(1), RegisterId(0));
        // Applying u1 at 2 without u0 violates safety.
        b.apply(ReplicaId(2), u1);
    }
}
