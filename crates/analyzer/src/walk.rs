//! Workspace walking: find the `.rs` files to lint, classify crate
//! roots, and run [`crate::rules::check_file`] over each.

use crate::rules::{check_file, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// One diagnostic, anchored to a workspace-relative path.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the linted root, `/`-separated.
    pub file: String,
    /// 1-based source line (0 for file-level I/O errors).
    pub line: u32,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Directories never descended into. `fixtures` keeps the linter's own
/// deliberately-violating test corpus out of a clean workspace run.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Recursively collects `.rs` files under `root`, sorted for stable
/// output.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Whether `rel` names a crate root (`src/lib.rs`, `src/main.rs`,
/// `src/bin/*.rs`) of a package — i.e. the `src`'s parent holds a
/// `Cargo.toml` under `root`.
fn is_crate_root(root: &Path, rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    let src_at = match parts.as_slice() {
        [.., "src", "lib.rs"] | [.., "src", "main.rs"] => parts.len() - 2,
        [.., "src", "bin", _] => parts.len() - 3,
        _ => return false,
    };
    let crate_dir = parts[..src_at].join("/");
    root.join(crate_dir).join("Cargo.toml").is_file()
}

/// Lints every `.rs` file under `root`; diagnostics come back sorted by
/// path and line. Files that cannot be read are reported as diagnostics
/// rather than skipped silently.
pub fn lint_root(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for path in collect_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = match fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                out.push(Diagnostic {
                    file: rel,
                    line: 0,
                    rule: "io",
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let crate_root = is_crate_root(root, &rel);
        for Finding {
            line,
            rule,
            message,
        } in check_file(&rel, &src, crate_root)
        {
            out.push(Diagnostic {
                file: rel.clone(),
                line,
                rule,
                message,
            });
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}
