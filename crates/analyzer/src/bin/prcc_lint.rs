//! `prcc-lint` — run the workspace invariant linter.
//!
//! ```text
//! prcc-lint [--root <dir>]
//! ```
//!
//! Walks every `.rs` file under the root (default: the current
//! directory), prints one `file:line: [rule] message` diagnostic per
//! violation, and exits 1 when any fired — the CI gate shape.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("prcc-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: prcc-lint [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("prcc-lint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let files = prcc_analyzer::collect_rs_files(&root).len();
    let diagnostics = prcc_analyzer::lint_root(&root);
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!("prcc-lint: clean ({files} files)");
        ExitCode::SUCCESS
    } else {
        println!(
            "prcc-lint: {} violation(s) across {files} files",
            diagnostics.len()
        );
        ExitCode::FAILURE
    }
}
