//! The six workspace invariants, checked over one file's token stream.
//!
//! Each rule guards a property the test suite can't see directly:
//!
//! 1. **wal-discard** — a `Wal::append` / `append_batch` / `stage_payload`
//!    result must reach a fail-stop decision; discarding it (`let _ =`,
//!    `.ok()`, a bare statement) silently breaks append-before-apply.
//! 2. **hot-path-alloc** — regions fenced by `// lint: hot-path` /
//!    `// lint: end-hot-path` must not allocate: no `Vec::new`/`vec!`/
//!    `format!`/`.clone()`/`.to_vec()` and no owned (non-`_into`) wire
//!    encoders. `Vec::with_capacity` is allowed (bounded, up-front).
//! 3. **unwrap** — non-test service/storage code must not `unwrap()` or
//!    `expect()` without a `// lint: allow(unwrap) <reason>` annotation:
//!    replica nodes fail stop on *checked* invariants, not on accidents.
//! 4. **std-lock** — `std::sync::Mutex`/`RwLock` are forbidden outside
//!    `compat/`: the `parking_lot` shim adds lock-order detection, and a
//!    raw std lock would dodge it.
//! 5. **forbid-unsafe** — every crate root carries
//!    `#![forbid(unsafe_code)]`. The single sanctioned escape: a
//!    `compat/` shim confining a raw capability (the `compat/mio` epoll
//!    FFI) may instead carry `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 6. **reactor-blocking** — regions fenced by `// lint: reactor` /
//!    `// lint: end-reactor` run on the event-loop workers: no
//!    `thread::spawn`, no blocking socket reads (`read_exact`,
//!    `read_frame`, …), no `recv`/`sleep`. A driver that blocks stalls
//!    every connection sharing its worker; use timers and commands.
//!
//! Rules 1–4 and 6 accept per-line `// lint: allow(<rule>) <reason>`
//! escapes (the annotation covers its own line and the next; rule 6's
//! allow name is `reactor`).

use crate::lexer::{lex, Directive, TokKind, Token};
use std::collections::{HashMap, HashSet};

/// One finding: `file` is filled in by the walker, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Stable rule id (`wal-discard`, `unwrap`, …).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

/// Rule 1: WAL append results must reach a fail-stop decision.
pub const RULE_WAL_DISCARD: &str = "wal-discard";
/// Rule 2: no allocation inside `// lint: hot-path` fences.
pub const RULE_HOT_PATH: &str = "hot-path-alloc";
/// Rule 3: no unannotated `unwrap`/`expect` in service/storage.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule 4: no `std::sync` locks outside `compat/`.
pub const RULE_STD_LOCK: &str = "std-lock";
/// Rule 5: crate roots must carry `#![forbid(unsafe_code)]`.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule 6: no thread spawns or blocking calls in `// lint: reactor` fences.
pub const RULE_REACTOR: &str = "reactor-blocking";
/// Meta rule: malformed or unbalanced `// lint:` directives.
pub const RULE_DIRECTIVE: &str = "directive";

/// The allow-annotation rule names users may write.
const ALLOWED_RULES: [&str; 5] = ["unwrap", "alloc", "std-lock", "wal-discard", "reactor"];

/// WAL mutation methods whose results must not be discarded.
const WAL_METHODS: [&str; 3] = ["append", "append_batch", "stage_payload"];

/// Owned encoders with an `_into` sibling; calling the owned form inside
/// a hot-path fence defeats the pooled-buffer design.
const OWNED_ENCODERS: [&str; 7] = [
    "encode_hello_ack",
    "encode_peer_ack",
    "encode_batch",
    "encode_multi_batch",
    "encode_request",
    "encode_response",
    "encode_peer_hello",
];

/// Calls that park or monopolize the calling thread; inside a
/// `// lint: reactor` fence any of these stalls every connection
/// multiplexed onto the same event-loop worker.
const REACTOR_BLOCKING: [&str; 10] = [
    "spawn",
    "sleep",
    "recv",
    "recv_timeout",
    "read_exact",
    "read_to_end",
    "read_frame",
    "read_frame_pooled",
    "accept",
    "join",
];

/// Checks one file. `rel` is the workspace-relative path with `/`
/// separators (it drives rule scoping); `is_crate_root` enables rule 5.
pub fn check_file(rel: &str, src: &str, is_crate_root: bool) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();

    for (line, why) in &lexed.bad_directives {
        findings.push(Finding {
            line: *line,
            rule: RULE_DIRECTIVE,
            message: why.clone(),
        });
    }

    let allows = allow_map(&lexed.directives, &mut findings);
    let fences = fence_spans(
        &lexed.directives,
        &mut findings,
        Directive::HotPathStart,
        Directive::HotPathEnd,
        "hot-path",
    );
    let reactor_fences = fence_spans(
        &lexed.directives,
        &mut findings,
        Directive::ReactorStart,
        Directive::ReactorEnd,
        "reactor",
    );
    let toks = &lexed.tokens;
    let test_skip = test_spans(toks);
    let in_tests = |i: usize| test_skip.iter().any(|&(a, b)| i >= a && i < b);
    let allowed = |line: u32, rule: &str| allows.get(&line).is_some_and(|set| set.contains(rule));
    let in_fence = |line: u32| fences.iter().any(|&(a, b)| line >= a && line <= b);
    let in_reactor = |line: u32| reactor_fences.iter().any(|&(a, b)| line >= a && line <= b);

    let compat = rel.starts_with("compat/");
    let test_dir = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let service_storage = rel.contains("crates/service/src") || rel.contains("crates/storage/src");

    // A `compat/` shim may confine a raw capability behind explicit
    // unsafe blocks instead of forbidding them outright — but only by
    // declaring so with `#![deny(unsafe_op_in_unsafe_fn)]` at the root.
    let unsafe_confinement = compat && has_deny_unsafe_op(toks);
    if is_crate_root && !has_forbid_unsafe(toks) && !unsafe_confinement {
        findings.push(Finding {
            line: 1,
            rule: RULE_FORBID_UNSAFE,
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }

    for i in 0..toks.len() {
        if in_tests(i) || test_dir {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let next_paren = toks.get(i + 1).is_some_and(|t| t.text == "(");
        let next_bang = toks.get(i + 1).is_some_and(|t| t.text == "!");

        // Rule 3: panic hygiene in service/storage.
        if service_storage
            && prev_dot
            && next_paren
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && !allowed(t.line, "unwrap")
        {
            findings.push(Finding {
                line: t.line,
                rule: RULE_UNWRAP,
                message: format!(
                    ".{}() in service/storage code: return the error (fail stop) \
                     or annotate `// lint: allow(unwrap) <why it cannot fire>`",
                    t.text
                ),
            });
        }

        // Rule 1: WAL results must reach a fail-stop decision.
        if service_storage
            && prev_dot
            && next_paren
            && WAL_METHODS.contains(&t.text.as_str())
            && !allowed(t.line, "wal-discard")
        {
            if let Some(message) = wal_discard(toks, i) {
                findings.push(Finding {
                    line: t.line,
                    rule: RULE_WAL_DISCARD,
                    message,
                });
            }
        }

        // Rule 4: std locks outside compat/.
        if !compat && t.text == "std" && path_is(toks, i + 1, &[":", ":", "sync"]) {
            for hit in std_lock_idents(toks, i) {
                if !allowed(toks[hit].line, "std-lock") {
                    findings.push(Finding {
                        line: toks[hit].line,
                        rule: RULE_STD_LOCK,
                        message: format!(
                            "std::sync::{} bypasses the compat/parking_lot shim \
                             (and its lock-order detector)",
                            toks[hit].text
                        ),
                    });
                }
            }
        }

        // Rule 2: allocations inside hot-path fences.
        if in_fence(t.line) && !allowed(t.line, "alloc") {
            let offense = if matches!(t.text.as_str(), "vec" | "format") && next_bang {
                Some(format!("{}! allocates", t.text))
            } else if matches!(t.text.as_str(), "Vec" | "String" | "Box")
                && path_is(toks, i + 1, &[":", ":", "new"])
            {
                Some(format!("{}::new() allocates per call", t.text))
            } else if prev_dot
                && next_paren
                && matches!(
                    t.text.as_str(),
                    "clone" | "to_vec" | "to_string" | "to_owned"
                )
            {
                Some(format!(".{}() copies into a fresh allocation", t.text))
            } else if next_paren
                && OWNED_ENCODERS.contains(&t.text.as_str())
                && !prev_is(toks, i, "fn")
                && !prev_dot
            {
                Some(format!(
                    "{} returns an owned Vec; use {}_into with a pooled buffer",
                    t.text, t.text
                ))
            } else {
                None
            };
            if let Some(what) = offense {
                findings.push(Finding {
                    line: t.line,
                    rule: RULE_HOT_PATH,
                    message: format!(
                        "{what} inside a `// lint: hot-path` fence \
                         (annotate `// lint: allow(alloc) <reason>` if deliberate)"
                    ),
                });
            }
        }

        // Rule 6: blocking calls inside reactor fences.
        if in_reactor(t.line)
            && !allowed(t.line, "reactor")
            && next_paren
            && REACTOR_BLOCKING.contains(&t.text.as_str())
            && !prev_is(toks, i, "fn")
        {
            findings.push(Finding {
                line: t.line,
                rule: RULE_REACTOR,
                message: format!(
                    "{}() blocks the event-loop worker inside a `// lint: reactor` \
                     fence; use ctx timers/commands, or annotate \
                     `// lint: allow(reactor) <reason>` if it cannot block",
                    t.text
                ),
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// Builds line → allowed-rule-set from `allow` directives; an annotation
/// covers its own line (trailing comment) and the next (its own line).
fn allow_map(
    directives: &[(u32, Directive)],
    findings: &mut Vec<Finding>,
) -> HashMap<u32, HashSet<String>> {
    let mut map: HashMap<u32, HashSet<String>> = HashMap::new();
    for (line, d) in directives {
        if let Directive::Allow { rule, .. } = d {
            if !ALLOWED_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    line: *line,
                    rule: RULE_DIRECTIVE,
                    message: format!(
                        "unknown rule in allow({rule}); known: {}",
                        ALLOWED_RULES.join(", ")
                    ),
                });
                continue;
            }
            map.entry(*line).or_default().insert(rule.clone());
            map.entry(*line + 1).or_default().insert(rule.clone());
        }
    }
    map
}

/// Pairs one kind of fence marker (`start`/`end`) into inclusive line
/// spans; unbalanced markers are findings (a fence that never closes
/// would silently fence the rest of the file — or nothing). The two
/// fence kinds pair independently, so a hot-path fence may sit inside a
/// reactor fence.
fn fence_spans(
    directives: &[(u32, Directive)],
    findings: &mut Vec<Finding>,
    start: Directive,
    end: Directive,
    what: &str,
) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut open: Option<u32> = None;
    for (line, d) in directives {
        if *d == start {
            if let Some(at) = open {
                findings.push(Finding {
                    line: *line,
                    rule: RULE_DIRECTIVE,
                    message: format!("{what} fence opened again (previous open at line {at})"),
                });
            } else {
                open = Some(*line);
            }
        } else if *d == end {
            match open.take() {
                Some(at) => spans.push((at, *line)),
                None => findings.push(Finding {
                    line: *line,
                    rule: RULE_DIRECTIVE,
                    message: format!("end-{what} without an open fence"),
                }),
            }
        }
    }
    if let Some(at) = open {
        findings.push(Finding {
            line: at,
            rule: RULE_DIRECTIVE,
            message: format!("{what} fence never closed"),
        });
    }
    spans
}

/// True when `tokens[at..]` spell exactly `expected` (text match).
fn path_is(tokens: &[Token], at: usize, expected: &[&str]) -> bool {
    expected
        .iter()
        .enumerate()
        .all(|(k, want)| tokens.get(at + k).is_some_and(|t| t.text == *want))
}

fn prev_is(tokens: &[Token], at: usize, want: &str) -> bool {
    at > 0 && tokens[at - 1].text == want
}

/// Finds `#![forbid(unsafe_code)]` anywhere in the token stream.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    (0..tokens.len()).any(|i| {
        path_is(
            tokens,
            i,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
    })
}

/// Finds `#![deny(unsafe_op_in_unsafe_fn)]` — the marker a `compat/`
/// unsafe-confinement crate carries instead of the forbid.
fn has_deny_unsafe_op(tokens: &[Token]) -> bool {
    (0..tokens.len()).any(|i| {
        path_is(
            tokens,
            i,
            &[
                "#",
                "!",
                "[",
                "deny",
                "(",
                "unsafe_op_in_unsafe_fn",
                ")",
                "]",
            ],
        )
    })
}

/// Token-index spans `[start, end)` of `#[cfg(test)] mod … { … }` blocks.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if path_is(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            let start = i;
            let mut j = i + 7;
            // Skip further attributes, visibility and the mod header up to
            // the opening brace, then swallow the balanced block.
            while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "{" {
                let mut depth = 0i32;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            spans.push((start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Decides whether the WAL call whose method name sits at token `at` has
/// its result discarded. Returns the violation message, or `None` when
/// the result is bound, propagated or consumed.
fn wal_discard(tokens: &[Token], at: usize) -> Option<String> {
    // Walk over the balanced argument list.
    let mut j = at + 1; // the `(`
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let method = &tokens[at].text;
    // `.ok()` directly on the call swallows the error.
    if path_is(tokens, j, &[".", "ok", "(", ")"]) {
        return Some(format!(
            ".{method}(…).ok() swallows a WAL failure the node must fail stop on"
        ));
    }
    // Anything other than a bare `;` consumes or propagates the value
    // (`?`, a chained `.expect`, `}` tail position, `,` argument, …).
    if tokens.get(j).is_none_or(|t| t.text != ";") {
        return None;
    }
    // Statement ends right after the call: find how it began.
    let mut s = at;
    while s > 0 && !matches!(tokens[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }
    let mut first = &tokens[s].text;
    if first == "let" && tokens.get(s + 1).is_some_and(|t| t.text == "mut") {
        first = &tokens[s + 1].text; // fall through to the binding name
    }
    if first == "let" {
        let bind = &tokens[s + 1].text;
        if bind.starts_with('_') {
            return Some(format!(
                "let {bind} = …{method}(…) discards the WAL result; \
                 handle the error (fail stop) or propagate it"
            ));
        }
        return None; // a real binding: the caller is handling it
    }
    if matches!(
        first.as_str(),
        "return" | "if" | "while" | "match" | "=" | "=>"
    ) {
        return None;
    }
    Some(format!(
        "bare `….{method}(…);` statement ignores the WAL result; \
         handle the error (fail stop) or propagate it"
    ))
}

/// Identifier token indices of `Mutex`/`RwLock` reachable from the
/// `std :: sync` path starting at `at`, within the same statement.
fn std_lock_idents(tokens: &[Token], at: usize) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut j = at;
    while j < tokens.len() && tokens[j].text != ";" {
        if tokens[j].kind == TokKind::Ident && matches!(tokens[j].text.as_str(), "Mutex" | "RwLock")
        {
            hits.push(j);
        }
        j += 1;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    const SVC: &str = "crates/service/src/x.rs";

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        check_file(rel, src, false)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn wal_discard_patterns() {
        assert_eq!(
            rules_hit(SVC, "fn f() { let _ = wal.append(p); }"),
            [RULE_WAL_DISCARD]
        );
        assert_eq!(
            rules_hit(SVC, "fn f() { wal.append_batch(&refs).ok(); }"),
            [RULE_WAL_DISCARD]
        );
        assert_eq!(
            rules_hit(SVC, "fn f() { d.stage_payload(|i, o| enc(i, o)); }"),
            [RULE_WAL_DISCARD]
        );
        assert!(rules_hit(
            SVC,
            "fn f() -> io::Result<()> { let n = wal.append(p)?; use_it(n); Ok(()) }"
        )
        .is_empty());
        assert!(rules_hit(
            SVC,
            "fn f() -> io::Result<usize> { self.append_batch(&[payload]) }"
        )
        .is_empty());
        assert!(rules_hit(
            SVC,
            "fn f() { let result = self.wal.append_batch(&payloads); result.expect(\"x\"); }"
        )
        .iter()
        .all(|r| *r == RULE_UNWRAP));
    }

    #[test]
    fn unwrap_needs_annotation_in_service_code() {
        assert_eq!(rules_hit(SVC, "fn f() { x.unwrap(); }"), [RULE_UNWRAP]);
        assert_eq!(rules_hit(SVC, "fn f() { x.expect(\"y\"); }"), [RULE_UNWRAP]);
        assert!(rules_hit(
            SVC,
            "fn f() {\n // lint: allow(unwrap) checked above\n x.unwrap();\n}"
        )
        .is_empty());
        assert!(rules_hit(SVC, "fn f() { x.unwrap_or(0); }").is_empty());
        assert!(
            rules_hit("crates/core/src/x.rs", "fn f() { x.unwrap(); }").is_empty(),
            "rule scoped to service/storage"
        );
        assert!(rules_hit(SVC, "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}").is_empty());
    }

    #[test]
    fn std_locks_flagged_outside_compat() {
        assert_eq!(
            rules_hit("crates/net/src/x.rs", "use std::sync::{Arc, Mutex};"),
            [RULE_STD_LOCK]
        );
        assert_eq!(
            rules_hit(
                "crates/net/src/x.rs",
                "fn f() { let l = std::sync::RwLock::new(0); }"
            ),
            [RULE_STD_LOCK]
        );
        assert!(rules_hit("compat/parking_lot/src/lib.rs", "use std::sync::Mutex;").is_empty());
        assert!(rules_hit("crates/net/src/x.rs", "use std::sync::{Arc, mpsc};").is_empty());
    }

    #[test]
    fn hot_path_fences_forbid_allocation() {
        let src = "// lint: hot-path\nfn f() { let v = Vec::new(); }\n// lint: end-hot-path\n";
        assert_eq!(rules_hit(SVC, src), [RULE_HOT_PATH]);
        let ok = "// lint: hot-path\nfn f() { let v: Vec<u8> = Vec::with_capacity(8); }\n// lint: end-hot-path\n";
        assert!(rules_hit(SVC, ok).is_empty());
        let owned = "// lint: hot-path\nfn f(o: &mut Vec<u8>) { let b = encode_response(&r); }\n// lint: end-hot-path\n";
        assert_eq!(rules_hit(SVC, owned), [RULE_HOT_PATH]);
        let into = "// lint: hot-path\nfn f(o: &mut Vec<u8>) { encode_response_into(&r, o); }\n// lint: end-hot-path\n";
        assert!(rules_hit(SVC, into).is_empty());
        let outside =
            "fn g() { let v = vec![1]; }\n// lint: hot-path\nfn f() {}\n// lint: end-hot-path\n";
        assert!(rules_hit(SVC, outside).is_empty());
    }

    #[test]
    fn crate_root_needs_forbid_unsafe() {
        assert_eq!(
            check_file("crates/x/src/lib.rs", "pub fn f() {}", true)[0].rule,
            RULE_FORBID_UNSAFE
        );
        assert!(check_file(
            "crates/x/src/lib.rs",
            "//! docs\n\n#![forbid(unsafe_code)]\npub fn f() {}",
            true
        )
        .is_empty());
    }

    #[test]
    fn compat_shims_may_confine_unsafe_instead() {
        let confined = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}";
        assert!(
            check_file("compat/mio/src/lib.rs", confined, true).is_empty(),
            "a compat crate declaring unsafe confinement is exempt"
        );
        assert_eq!(
            check_file("crates/x/src/lib.rs", confined, true)[0].rule,
            RULE_FORBID_UNSAFE,
            "the confinement escape is compat/-only"
        );
        assert_eq!(
            check_file("compat/mio/src/lib.rs", "pub fn f() {}", true)[0].rule,
            RULE_FORBID_UNSAFE,
            "a compat crate without the deny marker still needs the forbid"
        );
    }

    #[test]
    fn reactor_fences_forbid_blocking_calls() {
        let src = "// lint: reactor\nfn f() { thread::spawn(g); }\n// lint: end-reactor\n";
        assert_eq!(rules_hit(SVC, src), [RULE_REACTOR]);
        let read =
            "// lint: reactor\nfn f(s: &mut S) { s.read_exact(&mut b)?; }\n// lint: end-reactor\n";
        assert_eq!(rules_hit(SVC, read), [RULE_REACTOR]);
        let recv = "// lint: reactor\nfn f(rx: &R) { let m = rx.recv_timeout(d); }\n// lint: end-reactor\n";
        assert_eq!(rules_hit(SVC, recv), [RULE_REACTOR]);
        let outside = "fn g(s: &mut S) { s.read_exact(&mut b); }\n// lint: reactor\nfn f() {}\n// lint: end-reactor\n";
        assert!(rules_hit(SVC, outside).is_empty());
        let allowed = "// lint: reactor\nfn f(s: &mut S) {\n // lint: allow(reactor) handshake runs before registration\n s.read_exact(&mut b)?;\n}\n// lint: end-reactor\n";
        assert!(rules_hit(SVC, allowed).is_empty());
        let defn = "// lint: reactor\nfn read_exact(b: &mut [u8]) {}\n// lint: end-reactor\n";
        assert!(rules_hit(SVC, defn).is_empty(), "definitions are not calls");
    }

    #[test]
    fn reactor_and_hot_path_fences_nest_independently() {
        let src = "// lint: reactor\n// lint: hot-path\nfn f() { let v = Vec::new(); thread::spawn(g); }\n// lint: end-hot-path\n// lint: end-reactor\n";
        let mut rules = rules_hit(SVC, src);
        rules.sort_unstable();
        assert_eq!(rules, [RULE_HOT_PATH, RULE_REACTOR]);
    }

    #[test]
    fn unbalanced_fences_and_unknown_allows_are_findings() {
        assert_eq!(
            rules_hit(SVC, "// lint: hot-path\nfn f() {}\n"),
            [RULE_DIRECTIVE]
        );
        assert_eq!(
            rules_hit(SVC, "fn f() {}\n// lint: end-hot-path\n"),
            [RULE_DIRECTIVE]
        );
        assert_eq!(
            rules_hit(SVC, "// lint: allow(nonsense) because\nfn f() {}\n"),
            [RULE_DIRECTIVE]
        );
    }
}
