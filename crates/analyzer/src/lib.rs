//! `prcc-analyzer` — a dependency-free static analyzer for the PRCC
//! workspace's safety invariants.
//!
//! The repo's correctness story rests on conventions the compiler does
//! not check: every WAL append result must reach a fail-stop decision,
//! fenced hot-path regions must not allocate, service/storage code must
//! not panic on unchecked `unwrap`s, all locking must flow through the
//! `compat/parking_lot` shim (where the lock-order detector lives),
//! every crate root must forbid `unsafe` (with `compat/mio` confining
//! the epoll FFI instead), and fenced reactor regions must never block
//! the event-loop workers. This crate scans the source
//! tree at the token level and turns each convention into a `file:line`
//! diagnostic; the `prcc-lint` binary exits nonzero when any fires.
//!
//! See the README's *Static analysis* section for the rule list and the
//! `// lint: …` marker syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod rules;
mod walk;

pub use lexer::{lex, Directive, Lexed, TokKind, Token};
pub use rules::{
    check_file, Finding, RULE_DIRECTIVE, RULE_FORBID_UNSAFE, RULE_HOT_PATH, RULE_REACTOR,
    RULE_STD_LOCK, RULE_UNWRAP, RULE_WAL_DISCARD,
};
pub use walk::{collect_rs_files, lint_root, Diagnostic};
