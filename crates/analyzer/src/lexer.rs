//! A minimal Rust lexer: just enough to tell code from comments, strings
//! and lifetimes, so the rules in [`crate::rules`] can pattern-match on
//! identifier/punctuation token sequences without false hits inside
//! string literals or doc comments.
//!
//! Not a full lexer — numeric literal edge cases (exponent signs) and
//! exotic raw identifiers are tokenized approximately — but every
//! construct the rules care about (`.unwrap()`, `std::sync::Mutex`,
//! `vec![`, `#![forbid(unsafe_code)]`) comes out as a clean token run,
//! and `// lint: …` directives are extracted with their line numbers.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `let`, `Mutex`, `_`).
    Ident,
    /// One punctuation character (`.`, `(`, `;`, `!`, …).
    Punct,
    /// A string/char/byte/numeric literal (text not preserved verbatim).
    Literal,
    /// A lifetime (`'a`, `'static`), label included.
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse classification driving rule matching.
    pub kind: TokKind,
    /// Source text (empty for literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// lint: …` marker extracted from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// lint: hot-path` — opens an allocation-free fence.
    HotPathStart,
    /// `// lint: end-hot-path` — closes it.
    HotPathEnd,
    /// `// lint: reactor` — opens a fence where event-loop drivers run:
    /// no thread spawns, no blocking reads, no sleeps.
    ReactorStart,
    /// `// lint: end-reactor` — closes it.
    ReactorEnd,
    /// `// lint: allow(<rule>) <reason>` — suppresses `rule` on this
    /// line and the next.
    Allow {
        /// Which rule to suppress (`unwrap`, `alloc`, …).
        rule: String,
        /// Mandatory justification text.
        reason: String,
    },
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Well-formed directives with the line they appear on.
    pub directives: Vec<(u32, Directive)>,
    /// Comments that start with `lint:` but don't parse — a typoed
    /// directive silently doing nothing would be worse than an error.
    pub bad_directives: Vec<(u32, String)>,
}

/// Lexes `src` into tokens and lint directives.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_ascii_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            // Line comment: scan to end of line, then look for a directive.
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            parse_directive(text.trim(), line, &mut out);
            i = j;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            // Block comment, nested as in Rust.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i = skip_string(&chars, i, &mut line);
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
        } else if c == '\'' {
            // Lifetime or char literal. A lone `'x` followed by a
            // non-quote is a lifetime/label; anything else is a char.
            if i + 1 < n && is_ident_start(chars[i + 1]) && chars[i + 1] != '\\' {
                let mut j = i + 1;
                while j < n && is_ident(chars[j]) {
                    j += 1;
                }
                if j < n && chars[j] == '\'' && j == i + 2 {
                    // 'a' — a one-character char literal.
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j + 1;
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: chars[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            } else {
                // Escaped or non-ident char literal: scan to the closing
                // quote, honoring backslash escapes.
                let mut j = i + 1;
                while j < n && chars[j] != '\'' {
                    j += if chars[j] == '\\' { 2 } else { 1 };
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = (j + 1).min(n);
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // Raw/byte string prefixes swallow the quoted body.
            let next = chars.get(i).copied();
            match (word.as_str(), next) {
                ("r" | "br" | "rb", Some('"' | '#')) => {
                    i = skip_raw_string(&chars, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
                ("b", Some('"')) => {
                    i = skip_string(&chars, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
                _ => out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: word,
                    line,
                }),
            }
        } else if c.is_ascii_digit() {
            // Numbers: digits, `_`, alnum suffixes/radix letters, and a
            // decimal point when followed by another digit (so `1.max(2)`
            // still lexes the method call).
            i += 1;
            while i < n
                && (is_ident(chars[i])
                    || (chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
        } else {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Consumes a `"…"` string starting at the quote (index `at` points at the
/// opening `"` or the prefix just before it). Returns the index past the
/// closing quote.
fn skip_string(chars: &[char], at: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = at;
    // Step onto the opening quote if we were handed a prefix position.
    while i < n && chars[i] != '"' {
        i += 1;
    }
    i += 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Consumes a raw string body starting at the hashes/quote after an
/// `r`/`br` prefix. Returns the index past the closing delimiter.
fn skip_raw_string(chars: &[char], at: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = at;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < n && chars[i] == '"' {
        i += 1;
    }
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    n
}

/// Parses one comment body; pushes a directive or a bad-directive report
/// when the comment claims to be one.
fn parse_directive(text: &str, line: u32, out: &mut Lexed) {
    let Some(rest) = text.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    if rest == "hot-path" {
        out.directives.push((line, Directive::HotPathStart));
    } else if rest == "end-hot-path" {
        out.directives.push((line, Directive::HotPathEnd));
    } else if rest == "reactor" {
        out.directives.push((line, Directive::ReactorStart));
    } else if rest == "end-reactor" {
        out.directives.push((line, Directive::ReactorEnd));
    } else if let Some(after) = rest.strip_prefix("allow(") {
        match after.split_once(')') {
            Some((rule, reason)) if !rule.trim().is_empty() => {
                let reason = reason.trim();
                if reason.is_empty() {
                    out.bad_directives
                        .push((line, format!("allow({}) needs a reason", rule.trim())));
                } else {
                    out.directives.push((
                        line,
                        Directive::Allow {
                            rule: rule.trim().to_string(),
                            reason: reason.to_string(),
                        },
                    ));
                }
            }
            _ => out
                .bad_directives
                .push((line, format!("malformed allow directive: {rest}"))),
        }
    } else {
        out.bad_directives
            .push((line, format!("unknown lint directive: {rest}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // this unwrap() is a comment
            /* so is /* this nested */ unwrap() */
            let s = "call .unwrap() here";
            let r = r#"and "unwrap" here"#;
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|w| *w == "unwrap").count(),
            1,
            "only the real call tokenizes: {ids:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        let toks = lex("let c = 'x'; let l: &'static str = s;");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn directives_parse_with_lines() {
        let src = "fn a() {}\n// lint: hot-path\nfn b() {}\n// lint: allow(unwrap) cap checked\n// lint: end-hot-path\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives[0], (2, Directive::HotPathStart));
        assert_eq!(
            lexed.directives[1],
            (
                4,
                Directive::Allow {
                    rule: "unwrap".into(),
                    reason: "cap checked".into()
                }
            )
        );
        assert_eq!(lexed.directives[2], (5, Directive::HotPathEnd));
    }

    #[test]
    fn typoed_directives_are_reported_not_ignored() {
        let lexed = lex("// lint: hotpath\n// lint: allow(unwrap)\n");
        assert_eq!(lexed.directives.len(), 0);
        assert_eq!(lexed.bad_directives.len(), 2);
    }

    #[test]
    fn reactor_fences_parse() {
        let lexed = lex("// lint: reactor\nfn f() {}\n// lint: end-reactor\n");
        assert_eq!(lexed.directives[0], (1, Directive::ReactorStart));
        assert_eq!(lexed.directives[1], (3, Directive::ReactorEnd));
        assert!(lexed.bad_directives.is_empty());
    }

    #[test]
    fn byte_and_raw_strings_are_single_literals() {
        let lexed = lex(r###"let x = b"ab\"cd"; let y = r##"no "# end"##; done"###);
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "ab"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "end"));
    }

    #[test]
    fn method_calls_on_numbers_survive() {
        let ids = idents("let m = 1.max(2); let f = 1.5; let h = 0xFF_u32;");
        assert!(ids.contains(&"max".to_string()));
    }
}
