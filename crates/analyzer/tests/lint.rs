//! End-to-end linter tests: the fixture mini-workspace must trip every
//! rule at the expected `file:line`, and the real workspace must be
//! clean (this is the same walk the CI `prcc-lint` gate runs).

use prcc_analyzer::{lint_root, Diagnostic};
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn hits<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<(&'d str, u32)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.file.as_str(), d.line))
        .collect()
}

#[test]
fn fixtures_trip_every_rule_at_the_expected_lines() {
    let diags = lint_root(&fixtures_root());

    assert_eq!(
        hits(&diags, "forbid-unsafe"),
        [("crates/service/src/lib.rs", 1)],
        "compat/mio/src/lib.rs declares unsafe confinement and is exempt"
    );
    assert_eq!(hits(&diags, "std-lock"), [("crates/service/src/lib.rs", 4)]);
    assert_eq!(
        hits(&diags, "unwrap"),
        [("crates/service/src/lib.rs", 11)],
        "the annotated unwrap and the cfg(test) unwrap must not fire"
    );
    assert_eq!(
        hits(&diags, "hot-path-alloc"),
        [
            ("crates/service/src/hot.rs", 6),
            ("crates/service/src/hot.rs", 7),
            ("crates/service/src/hot.rs", 8),
            ("crates/service/src/hot.rs", 9),
            ("crates/service/src/hot.rs", 10),
        ],
        "five allocating constructs inside the fence; with_capacity, the \
         _into encoder, the allow(alloc) line and unfenced code stay silent"
    );
    assert_eq!(
        hits(&diags, "wal-discard"),
        [
            ("crates/service/src/waluser.rs", 7),
            ("crates/service/src/waluser.rs", 11),
            ("crates/service/src/waluser.rs", 15),
        ],
        "underscore binding, .ok() and bare statement; ? and tail \
         position stay silent"
    );
    assert_eq!(
        hits(&diags, "reactor-blocking"),
        [
            ("crates/service/src/driver.rs", 6),
            ("crates/service/src/driver.rs", 7),
            ("crates/service/src/driver.rs", 8),
        ],
        "spawn, a blocking read and recv_timeout inside the fence; the \
         allow(reactor) line and unfenced code stay silent"
    );
    assert_eq!(
        hits(&diags, "directive"),
        [],
        "all fixture directives are well-formed"
    );
}

#[test]
fn fixture_diagnostics_carry_file_line_and_messages() {
    let diags = lint_root(&fixtures_root());
    assert!(!diags.is_empty());
    for d in &diags {
        let rendered = d.to_string();
        assert!(
            rendered.starts_with(&format!("{}:{}: [{}] ", d.file, d.line, d.rule)),
            "diagnostic format drifted: {rendered}"
        );
        assert!(!d.message.is_empty());
    }
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_root(&root);
    assert!(
        diags.is_empty(),
        "workspace lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
