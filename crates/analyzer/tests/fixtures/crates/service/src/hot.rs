//! Fixture hot path: every forbidden allocating construct inside one
//! fence (rule 2), plus the escapes that must stay silent.

// lint: hot-path
pub fn leaky(data: &[u8], out: &mut Vec<u8>) {
    let v: Vec<u8> = Vec::new();
    let copy = data.to_vec();
    let owned = copy.clone();
    let framed = encode_response(&owned);
    let msg = format!("{} bytes", framed.len());
    out.extend_from_slice(msg.as_bytes());
    drop(v);
}

pub fn frugal(data: &[u8], out: &mut Vec<u8>) {
    let mut scratch: Vec<u8> = Vec::with_capacity(data.len());
    scratch.extend_from_slice(data);
    encode_response_into(&scratch, out);
    // lint: allow(alloc) fixture: the annotation must suppress rule 2
    let _blessed = data.to_vec();
}
// lint: end-hot-path

pub fn unfenced(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}

fn encode_response(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}

fn encode_response_into(data: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(data);
}
