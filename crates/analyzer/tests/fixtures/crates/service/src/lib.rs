//! Fixture crate root: missing `#![forbid(unsafe_code)]` (rule 5 fires
//! at line 1), holding a std lock (rule 4) and a naked unwrap (rule 3).

use std::sync::Mutex;

pub struct Holder {
    slot: Mutex<Option<u32>>,
}

pub fn naked(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn annotated(x: Option<u32>) -> u32 {
    // lint: allow(unwrap) fixture: the annotation must suppress rule 3
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
