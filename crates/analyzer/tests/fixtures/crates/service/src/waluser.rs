//! Fixture WAL discipline: each discard shape of rule 1, plus the
//! handled forms that must stay silent.

use crate::Wal;

pub fn underscore_discard(wal: &mut Wal, payload: &[u8]) {
    let _ = wal.append(payload);
}

pub fn swallowed(wal: &mut Wal, refs: &[&[u8]]) {
    wal.append_batch(refs).ok();
}

pub fn bare_statement(wal: &mut Wal, payload: &[u8]) {
    wal.stage_payload(payload);
}

pub fn propagated(wal: &mut Wal, payload: &[u8]) -> std::io::Result<usize> {
    let n = wal.append(payload)?;
    Ok(n)
}

pub fn tail_position(wal: &mut Wal, refs: &[&[u8]]) -> std::io::Result<usize> {
    wal.append_batch(refs)
}
