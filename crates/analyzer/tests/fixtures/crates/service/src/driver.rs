//! Fixture reactor fence: blocking calls inside the fence (rule 6),
//! plus the escapes that must stay silent.

// lint: reactor
pub fn blocking_driver(stream: &mut Stream, rx: &Receiver) {
    thread::spawn(background);
    stream.read_exact(&mut [0u8; 4]);
    let _m = rx.recv_timeout(timeout());
}

pub fn patient_driver(stream: &mut Stream) {
    // lint: allow(reactor) fixture: the annotation must suppress rule 6
    stream.read_exact(&mut [0u8; 4]);
    stream.set_timer();
}
// lint: end-reactor

pub fn unfenced(stream: &mut Stream) {
    stream.read_exact(&mut [0u8; 4]);
}
