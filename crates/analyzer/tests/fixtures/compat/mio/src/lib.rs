//! Fixture unsafe-confinement crate root: a `compat/` shim carrying
//! `#![deny(unsafe_op_in_unsafe_fn)]` instead of the forbid must NOT
//! trip rule 5 (outside `compat/`, or without the marker, it would).

#![deny(unsafe_op_in_unsafe_fn)]

pub fn safe_surface() {}
