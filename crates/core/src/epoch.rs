//! Epoch-based reconfiguration of the share graph.
//!
//! The paper treats the register placement `X_r` as static and notes that
//! "in practice, set `X_r` for replica `r` may change dynamically"
//! (Section 2). This module implements the standard epoch-barrier approach
//! to that future-work item:
//!
//! 1. drain the current epoch to quiescence and verify it was causally
//!    consistent,
//! 2. build a fresh cluster (new share graph ⇒ new timestamp graphs and
//!    zeroed clocks), and
//! 3. re-publish the surviving register values as fresh epoch-initial
//!    writes, so they acquire causal histories in the new epoch and
//!    propagate to all (possibly new) holders through the normal protocol.
//!
//! Causal dependencies do not cross the barrier — exactly the guarantee an
//! epoch change gives: every update of epoch `e` happens-before every
//! update of epoch `e + 1` by construction (the barrier is a global
//! synchronization point).

use crate::cluster::Cluster;
use crate::CoreError;
use prcc_checker::Verdict;
use prcc_clock::Protocol;
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::DeliveryPolicy;

/// Error returned when a reconfiguration barrier finds the old epoch
/// inconsistent.
#[derive(Debug, Clone)]
pub struct EpochError {
    /// The epoch that failed verification.
    pub epoch: u64,
    /// The failing verdict.
    pub verdict: Verdict,
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} failed the reconfiguration barrier: {}",
            self.epoch, self.verdict
        )
    }
}

impl std::error::Error for EpochError {}

/// A cluster with epoch-based share-graph reconfiguration.
pub struct EpochedCluster<P: Protocol> {
    epoch: u64,
    cluster: Cluster<P>,
}

impl<P: Protocol> EpochedCluster<P> {
    /// Starts epoch 0.
    pub fn new(protocol: P, policy: Box<dyn DeliveryPolicy>) -> Self {
        EpochedCluster {
            epoch: 0,
            cluster: Cluster::new(protocol, policy),
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live cluster of the current epoch.
    pub fn cluster(&self) -> &Cluster<P> {
        &self.cluster
    }

    /// Mutable access to the live cluster (writes, stepping, link control).
    pub fn cluster_mut(&mut self) -> &mut Cluster<P> {
        &mut self.cluster
    }

    /// Runs the barrier and switches to a new share graph/protocol.
    ///
    /// Register values that survive (registers present in both universes)
    /// are re-published in the new epoch via one initial write at their
    /// first new holder and propagated to quiescence, so the new epoch
    /// starts in a consistent, fully replicated-per-placement state.
    ///
    /// # Errors
    ///
    /// [`EpochError`] if the old epoch's final verdict is inconsistent;
    /// the old cluster is left in place in that case.
    pub fn reconfigure(
        &mut self,
        new_protocol: P,
        new_policy: Box<dyn DeliveryPolicy>,
    ) -> Result<(), EpochError> {
        // 1. Barrier: drain and verify the old epoch.
        self.cluster.release_and_settle();
        let verdict = self.cluster.verdict();
        if !verdict.is_consistent() {
            return Err(EpochError {
                epoch: self.epoch,
                verdict,
            });
        }
        // 2. Snapshot surviving values: one representative holder each.
        let old_g = self.cluster.protocol().share_graph().clone();
        let mut survivors: Vec<(RegisterId, u64)> = Vec::new();
        for x in old_g.registers() {
            for &h in old_g.holders(x) {
                if let Some(v) = self.cluster.replica(h).peek(x) {
                    survivors.push((x, v));
                    break;
                }
            }
        }
        // 3. Fresh epoch.
        let mut next = Cluster::new(new_protocol, new_policy);
        let new_g = next.protocol().share_graph().clone();
        for (x, v) in survivors {
            if x.index() >= new_g.num_registers() {
                continue;
            }
            if let Some(&h) = new_g.holders(x).first() {
                next.write(h, x, v).expect("holder stores the register");
            }
        }
        next.run_to_quiescence();
        debug_assert!(next.verdict().is_consistent());
        self.cluster = next;
        self.epoch += 1;
        Ok(())
    }

    /// Convenience passthrough: write in the current epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the cluster.
    pub fn write(&mut self, i: ReplicaId, x: RegisterId, v: u64) -> Result<(), CoreError> {
        self.cluster.write(i, x, v).map(|_| ())
    }

    /// Convenience passthrough: read in the current epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the cluster.
    pub fn read(&self, i: ReplicaId, x: RegisterId) -> Result<Option<u64>, CoreError> {
        self.cluster.read(i, x)
    }
}

impl<P: Protocol> std::fmt::Debug for EpochedCluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochedCluster")
            .field("epoch", &self.epoch)
            .field("cluster", &self.cluster)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::EdgeProtocol;
    use prcc_graph::topologies;
    use prcc_net::{FixedDelay, UniformDelay};

    #[test]
    fn values_survive_a_topology_change() {
        // Epoch 0: line(3); epoch 1: ring(3) with the same register ids
        // 0..=1 plus the new ring register 2.
        let mut ec = EpochedCluster::new(
            EdgeProtocol::new(topologies::line(3)),
            Box::new(FixedDelay(2)),
        );
        ec.write(ReplicaId(0), RegisterId(0), 7).unwrap();
        ec.write(ReplicaId(2), RegisterId(1), 9).unwrap();
        ec.reconfigure(
            EdgeProtocol::new(topologies::ring(3)),
            Box::new(FixedDelay(2)),
        )
        .unwrap();
        assert_eq!(ec.epoch(), 1);
        // ring(3): register 0 held by {0,1}, register 1 by {1,2}.
        assert_eq!(ec.read(ReplicaId(1), RegisterId(0)).unwrap(), Some(7));
        assert_eq!(ec.read(ReplicaId(2), RegisterId(1)).unwrap(), Some(9));
        // New epoch keeps working and verifying.
        ec.write(ReplicaId(0), RegisterId(2), 5).unwrap();
        ec.cluster_mut().run_to_quiescence();
        assert!(ec.cluster().verdict().is_consistent());
        assert_eq!(ec.read(ReplicaId(2), RegisterId(2)).unwrap(), Some(5));
    }

    #[test]
    fn barrier_drains_in_flight_traffic() {
        let mut ec = EpochedCluster::new(
            EdgeProtocol::new(topologies::ring(4)),
            Box::new(UniformDelay::new(3, 1, 30)),
        );
        for v in 0..20u64 {
            let i = ReplicaId((v % 4) as usize);
            let reg = prcc_graph::RegisterId((i.index() % 4) as u32);
            ec.write(i, reg, v).unwrap();
        }
        // Reconfigure immediately: the barrier must finish delivery first.
        ec.reconfigure(
            EdgeProtocol::new(topologies::ring(4)),
            Box::new(UniformDelay::new(4, 1, 30)),
        )
        .unwrap();
        assert!(ec.cluster().verdict().is_consistent());
    }

    #[test]
    fn growing_the_system_adds_replicas() {
        let mut ec = EpochedCluster::new(
            EdgeProtocol::new(topologies::line(2)),
            Box::new(FixedDelay(1)),
        );
        ec.write(ReplicaId(0), RegisterId(0), 3).unwrap();
        ec.reconfigure(
            EdgeProtocol::new(topologies::line(5)),
            Box::new(FixedDelay(1)),
        )
        .unwrap();
        // The old register 0 (shared 0–1) survives into the larger line.
        assert_eq!(ec.read(ReplicaId(1), RegisterId(0)).unwrap(), Some(3));
        ec.write(ReplicaId(4), RegisterId(3), 8).unwrap();
        ec.cluster_mut().run_to_quiescence();
        assert_eq!(ec.read(ReplicaId(3), RegisterId(3)).unwrap(), Some(8));
        assert!(ec.cluster().verdict().is_consistent());
    }
}
