//! The `update(i, τ, x, v)` message of the prototype.

use prcc_checker::UpdateId;
use prcc_clock::ClockState;
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::VirtualTime;

/// An update message: issuer, attached timestamp, register and value
/// (`update(i, τ_i, x, v)` in the prototype), plus bookkeeping for the
/// oracle and latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Update<C> {
    /// Oracle-assigned globally unique id (not protocol metadata; used only
    /// for verification and statistics).
    pub id: UpdateId,
    /// The issuing replica `i`.
    pub issuer: ReplicaId,
    /// The written register `x`.
    pub register: RegisterId,
    /// The written value `v`.
    pub value: u64,
    /// The attached timestamp `τ_i` (after `advance`).
    pub clock: C,
    /// Virtual time at which the update was issued (latency accounting).
    pub issued_at: VirtualTime,
    /// Virtual time at which this copy was received (set on receipt; used
    /// for pending-buffer stall accounting).
    pub received_at: VirtualTime,
}

impl<C: ClockState> Update<C> {
    /// Wire size of the message: fixed header (issuer, register, value) plus
    /// the encoded timestamp.
    ///
    /// Headers cost 12 bytes (4-byte issuer + 4-byte register + … values are
    /// 8 bytes but dummy-metadata messages omit them); the dominant,
    /// topology-dependent term is the timestamp.
    pub fn wire_size(&self, carries_value: bool) -> usize {
        let header = 8; // issuer + register
        let value = if carries_value { 8 } else { 0 };
        header + value + self.clock.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::{Protocol, VectorProtocol};
    use prcc_graph::topologies;

    #[test]
    fn wire_size_accounts_for_value_and_clock() {
        let g = topologies::line(2);
        let p = VectorProtocol::new(g);
        let u = Update {
            id: UpdateId(0),
            issuer: ReplicaId(0),
            register: RegisterId(0),
            value: 42,
            clock: p.new_clock(ReplicaId(0)),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        };
        let with = u.wire_size(true);
        let without = u.wire_size(false);
        assert_eq!(with - without, 8);
        assert!(without > 8);
    }
}
