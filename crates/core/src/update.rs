//! The `update(i, τ, x, v)` message of the prototype.

use prcc_checker::UpdateId;
use prcc_clock::ClockState;
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::VirtualTime;

/// An update message: issuer, attached timestamp, register and value
/// (`update(i, τ_i, x, v)` in the prototype), plus bookkeeping for the
/// oracle and latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Update<C> {
    /// Oracle-assigned globally unique id (not protocol metadata; used only
    /// for verification and statistics).
    pub id: UpdateId,
    /// The issuing replica `i`.
    pub issuer: ReplicaId,
    /// The written register `x`.
    pub register: RegisterId,
    /// The written value `v`.
    pub value: u64,
    /// The attached timestamp `τ_i` (after `advance`).
    pub clock: C,
    /// Virtual time at which the update was issued (latency accounting).
    pub issued_at: VirtualTime,
    /// Virtual time at which this copy was received (set on receipt; used
    /// for pending-buffer stall accounting).
    pub received_at: VirtualTime,
}

impl<C: ClockState> Update<C> {
    /// Wire size of the message: fixed header (issuer, register, value) plus
    /// the encoded timestamp.
    ///
    /// Headers cost 12 bytes (4-byte issuer + 4-byte register + … values are
    /// 8 bytes but dummy-metadata messages omit them); the dominant,
    /// topology-dependent term is the timestamp.
    pub fn wire_size(&self, carries_value: bool) -> usize {
        let header = 8; // issuer + register
        let value = if carries_value { 8 } else { 0 };
        header + value + self.clock.encoded_len()
    }
}

impl<C: prcc_clock::WireClock> Update<C> {
    /// Appends the real wire encoding of this update: varint id, issuer,
    /// register and value, followed by the timestamp counters.
    ///
    /// The virtual-time bookkeeping fields (`issued_at`, `received_at`) are
    /// simulator-local and intentionally not transmitted; a networked
    /// deployment measures latency with wall clocks at its own layer.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        use prcc_clock::encoding::write_varint;
        write_varint(out, self.id.0);
        write_varint(out, self.issuer.index() as u64);
        write_varint(out, u64::from(self.register.0));
        write_varint(out, self.value);
        self.clock.encode_wire(out);
    }

    /// Decodes an update produced by [`Update::encode_wire`] from the front
    /// of `buf`, advancing `offset`.
    ///
    /// `make_clock` maps the decoded issuer to a zeroed template clock with
    /// that replica's index set (typically `Protocol::new_clock`); it may
    /// return `None` for an out-of-range issuer. Returns `None` on any
    /// malformed input.
    pub fn decode_wire<F>(buf: &[u8], offset: &mut usize, make_clock: F) -> Option<Update<C>>
    where
        F: FnOnce(ReplicaId) -> Option<C>,
    {
        use prcc_clock::encoding::read_varint;
        let mut at = *offset;
        let next = |at: &mut usize| -> Option<u64> {
            let (v, used) = read_varint(&buf[*at..])?;
            *at += used;
            Some(v)
        };
        let id = next(&mut at)?;
        let issuer = usize::try_from(next(&mut at)?).ok()?;
        let register = u32::try_from(next(&mut at)?).ok()?;
        let value = next(&mut at)?;
        let mut clock = make_clock(ReplicaId(issuer))?;
        if !clock.decode_wire(buf, &mut at) {
            return None;
        }
        *offset = at;
        Some(Update {
            id: UpdateId(id),
            issuer: ReplicaId(issuer),
            register: RegisterId(register),
            value,
            clock,
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::{EdgeProtocol, Protocol, VectorProtocol};
    use prcc_graph::topologies;

    #[test]
    fn wire_encoding_round_trips() {
        let g = topologies::figure5();
        let p = EdgeProtocol::new(g);
        let i = ReplicaId(0);
        let mut clock = p.new_clock(i);
        p.advance(i, &mut clock, RegisterId(5));
        p.advance(i, &mut clock, RegisterId(7));
        let u = Update {
            id: UpdateId(77),
            issuer: i,
            register: RegisterId(5),
            value: 424242,
            clock,
            issued_at: VirtualTime(9),
            received_at: VirtualTime(11),
        };
        let mut buf = Vec::new();
        u.encode_wire(&mut buf);
        let mut offset = 0;
        let got = Update::decode_wire(&buf, &mut offset, |k| Some(p.new_clock(k)))
            .expect("well-formed update");
        assert_eq!(offset, buf.len());
        assert_eq!(got.id, u.id);
        assert_eq!(got.issuer, u.issuer);
        assert_eq!(got.register, u.register);
        assert_eq!(got.value, u.value);
        assert_eq!(got.clock, u.clock);
        // Virtual times are simulator-local and reset on decode.
        assert_eq!(got.issued_at, VirtualTime::ZERO);
    }

    #[test]
    fn wire_decoding_rejects_truncation() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let u = Update {
            id: UpdateId(1),
            issuer: ReplicaId(0),
            register: RegisterId(0),
            value: 5,
            clock: p.new_clock(ReplicaId(0)),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        };
        let mut buf = Vec::new();
        u.encode_wire(&mut buf);
        for cut in 0..buf.len() {
            let mut offset = 0;
            assert!(
                Update::<prcc_clock::EdgeClock>::decode_wire(&buf[..cut], &mut offset, |k| Some(
                    p.new_clock(k)
                ))
                .is_none(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn wire_size_accounts_for_value_and_clock() {
        let g = topologies::line(2);
        let p = VectorProtocol::new(g);
        let u = Update {
            id: UpdateId(0),
            issuer: ReplicaId(0),
            register: RegisterId(0),
            value: 42,
            clock: p.new_clock(ReplicaId(0)),
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        };
        let with = u.wire_size(true);
        let without = u.wire_size(false);
        assert_eq!(with - without, 8);
        assert!(without > 8);
    }
}
