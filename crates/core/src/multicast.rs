//! Causal group multicast with overlapping groups, as a view over the DSM.
//!
//! Section 2.2 of the paper spells out the correspondence: replicas sharing
//! a register `x` form the multicast group `G_x`; an update to `x` is a
//! multicast to `G_x`; replica-centric causal consistency is causal group
//! delivery. This adapter exposes that interface directly, so the crate
//! doubles as a causal-multicast library for overlapping groups — with the
//! paper's optimal per-process metadata.

use crate::cluster::Cluster;
use crate::CoreError;
use prcc_clock::EdgeProtocol;
use prcc_graph::{GraphError, RegisterId, ReplicaId, ShareGraph};
use prcc_net::DeliveryPolicy;
use serde::{Deserialize, Serialize};

/// Identifier of a multicast group (one group per shared register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A delivered multicast message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The sending process.
    pub sender: ReplicaId,
    /// The group it was multicast to.
    pub group: GroupId,
    /// The payload.
    pub payload: u64,
}

/// Causal group multicast over overlapping groups.
///
/// # Example
///
/// ```
/// use prcc_core::multicast::{CausalMulticast, GroupId};
/// use prcc_graph::ReplicaId;
/// use prcc_net::UniformDelay;
///
/// // Two overlapping groups: {p0, p1} and {p1, p2}.
/// let mut mc = CausalMulticast::new(
///     3,
///     vec![vec![ReplicaId(0), ReplicaId(1)], vec![ReplicaId(1), ReplicaId(2)]],
///     Box::new(UniformDelay::new(1, 1, 10)),
/// )?;
/// mc.multicast(ReplicaId(0), GroupId(0), 42)?;
/// mc.pump();
/// assert_eq!(mc.delivered(ReplicaId(1))[0].payload, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CausalMulticast {
    cluster: Cluster<EdgeProtocol>,
    delivered: Vec<Vec<DeliveredMessage>>,
}

impl CausalMulticast {
    /// Creates a system of `processes` processes and the given group
    /// memberships (group `g` = `groups[g]`).
    ///
    /// # Errors
    ///
    /// [`GraphError`] if a membership references an unknown process or the
    /// derived share graph is degenerate.
    pub fn new(
        processes: usize,
        groups: Vec<Vec<ReplicaId>>,
        policy: Box<dyn DeliveryPolicy>,
    ) -> Result<CausalMulticast, GraphError> {
        let mut assignments: Vec<Vec<RegisterId>> = vec![Vec::new(); processes];
        for (g, members) in groups.iter().enumerate() {
            for &p in members {
                if p.index() >= processes {
                    return Err(GraphError::UnknownReplica(p));
                }
                assignments[p.index()].push(RegisterId(g as u32));
            }
        }
        let share = ShareGraph::from_assignments(assignments)?;
        Ok(CausalMulticast {
            cluster: Cluster::new(EdgeProtocol::new(share), policy),
            delivered: vec![Vec::new(); processes],
        })
    }

    /// Multicasts `payload` from `sender` to its group.
    ///
    /// Local delivery is immediate (the sender "applies" its own message),
    /// matching the paper's prototype where a writer applies its own write.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`] if the sender is not a member of the group.
    pub fn multicast(
        &mut self,
        sender: ReplicaId,
        group: GroupId,
        payload: u64,
    ) -> Result<(), CoreError> {
        self.cluster.write(sender, RegisterId(group.0), payload)?;
        self.delivered[sender.index()].push(DeliveredMessage {
            sender,
            group,
            payload,
        });
        Ok(())
    }

    /// Delivers everything currently in flight, in causal order, recording
    /// per-process delivery logs.
    pub fn pump(&mut self) {
        while let Some((dst, applied)) = self.cluster.step_detailed() {
            for u in applied {
                self.delivered[dst.index()].push(DeliveredMessage {
                    sender: u.issuer,
                    group: GroupId(u.register.0),
                    payload: u.value,
                });
            }
        }
    }

    /// The delivery log of a process, in delivery order.
    pub fn delivered(&self, p: ReplicaId) -> &[DeliveredMessage] {
        &self.delivered[p.index()]
    }

    /// True if every multicast has been delivered to every group member and
    /// all deliveries respected causal order.
    pub fn is_causally_consistent(&self) -> bool {
        self.cluster.verdict().is_consistent()
    }

    /// The underlying cluster (timestamp sizes, stats, link control).
    pub fn cluster_mut(&mut self) -> &mut Cluster<EdgeProtocol> {
        &mut self.cluster
    }
}

impl std::fmt::Debug for CausalMulticast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CausalMulticast")
            .field("processes", &self.delivered.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_net::{FixedDelay, UniformDelay};

    /// Overlapping groups: {0,1}, {1,2}, {2,3}. A message to g0 observed by
    /// p1, followed by p1's multicast to g1, must be delivered in that
    /// causal order at p2... transitively down the chain.
    #[test]
    fn causal_order_across_overlapping_groups() {
        let mut mc = CausalMulticast::new(
            4,
            vec![
                vec![ReplicaId(0), ReplicaId(1)],
                vec![ReplicaId(1), ReplicaId(2)],
                vec![ReplicaId(2), ReplicaId(3)],
            ],
            Box::new(FixedDelay(5)),
        )
        .unwrap();
        mc.multicast(ReplicaId(0), GroupId(0), 100).unwrap();
        mc.pump();
        mc.multicast(ReplicaId(1), GroupId(1), 101).unwrap();
        mc.pump();
        mc.multicast(ReplicaId(2), GroupId(2), 102).unwrap();
        mc.pump();
        assert!(mc.is_causally_consistent());
        let log1 = mc.delivered(ReplicaId(1));
        assert_eq!(
            log1.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![100, 101]
        );
        let log2 = mc.delivered(ReplicaId(2));
        assert_eq!(
            log2.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![101, 102]
        );
    }

    #[test]
    fn non_members_never_receive() {
        let mut mc = CausalMulticast::new(
            3,
            vec![vec![ReplicaId(0), ReplicaId(1)]],
            Box::new(FixedDelay(1)),
        )
        .unwrap();
        mc.multicast(ReplicaId(0), GroupId(0), 9).unwrap();
        mc.pump();
        assert!(mc.delivered(ReplicaId(2)).is_empty());
        assert_eq!(mc.delivered(ReplicaId(1)).len(), 1);
        // And non-members cannot send.
        assert!(mc.multicast(ReplicaId(2), GroupId(0), 1).is_err());
    }

    #[test]
    fn concurrent_multicasts_all_delivered() {
        let mut mc = CausalMulticast::new(
            5,
            (0..5)
                .map(|g| vec![ReplicaId(g), ReplicaId((g + 1) % 5)])
                .collect(),
            Box::new(UniformDelay::new(9, 1, 25)),
        )
        .unwrap();
        for round in 0..10u64 {
            for p in 0..5usize {
                mc.multicast(ReplicaId(p), GroupId(p as u32), round * 10 + p as u64)
                    .unwrap();
            }
        }
        mc.pump();
        assert!(mc.is_causally_consistent());
        for p in 0..5usize {
            // Each process is in two groups with 10 messages each; it sent
            // 10 itself and received 10 from its other group.
            assert_eq!(mc.delivered(ReplicaId(p)).len(), 20);
        }
    }
}
