//! A peer-to-peer cluster: replicas + simulated network + oracle.

use crate::dedup::SeqWatermark;
use crate::replica::Replica;
use crate::stats::ClusterStats;
use crate::update::Update;
use crate::CoreError;
use prcc_checker::{Oracle, UpdateId, Verdict};
use prcc_clock::{ClockState, Protocol};
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::{DeliveryPolicy, Network};
use prcc_telemetry::Histogram;

/// A complete peer-to-peer system (Figure 1a): `R` replicas over a
/// simulated asynchronous network, verified online by the oracle.
///
/// # Example
///
/// ```
/// use prcc_core::Cluster;
/// use prcc_clock::EdgeProtocol;
/// use prcc_graph::{topologies, RegisterId, ReplicaId};
/// use prcc_net::UniformDelay;
///
/// let g = topologies::ring(4);
/// let mut cluster = Cluster::new(
///     EdgeProtocol::new(g),
///     Box::new(UniformDelay::new(42, 1, 20)),
/// );
/// cluster.write(ReplicaId(0), RegisterId(0), 7)?;
/// cluster.run_to_quiescence();
/// assert!(cluster.verdict().is_consistent());
/// assert_eq!(cluster.read(ReplicaId(1), RegisterId(0))?, Some(7));
/// # Ok::<(), prcc_core::CoreError>(())
/// ```
pub struct Cluster<P: Protocol> {
    protocol: P,
    replicas: Vec<Replica<P>>,
    net: Network<(u64, Update<P::Clock>)>,
    /// Next per-link delivery sequence, `link_seq[src][dst]` (sequences
    /// start at 1; 0 is the unsequenced sentinel).
    link_seq: Vec<Vec<u64>>,
    /// Per-link receive watermarks, `recv[dst][src]`: exact duplicate
    /// suppression for at-least-once channels in O(reordering window)
    /// memory (replacing the per-replica O(history) id sets).
    recv: Vec<Vec<SeqWatermark>>,
    /// Duplicate deliveries suppressed, per receiving replica.
    dup_dropped: Vec<u64>,
    oracle: Oracle,
    verdict: Verdict,
    stats: ClusterStats,
    /// Distribution of (apply − issue) ticks; replaces the old running-sum
    /// counter so tables can report tails, not just means.
    apply_hist: Histogram,
    /// Distribution of (apply − receive) ticks spent blocked in `pending`.
    stall_hist: Histogram,
}

impl<P: Protocol> Cluster<P> {
    /// Builds a cluster for the protocol's share graph with the given
    /// delivery policy.
    pub fn new(protocol: P, policy: Box<dyn DeliveryPolicy>) -> Self {
        let g = protocol.share_graph();
        let n = g.num_replicas();
        let replicas: Vec<Replica<P>> = g.replicas().map(|i| Replica::new(&protocol, i)).collect();
        let net = Network::new(n, policy);
        let oracle = Oracle::new(g);
        let stats = ClusterStats {
            timestamp_entries: replicas.iter().map(|r| r.clock().entries()).collect(),
            ..Default::default()
        };
        Cluster {
            protocol,
            replicas,
            net,
            link_seq: vec![vec![0; n]; n],
            recv: vec![vec![SeqWatermark::new(); n]; n],
            dup_dropped: vec![0; n],
            oracle,
            verdict: Verdict::default(),
            stats,
            apply_hist: Histogram::new(),
            stall_hist: Histogram::new(),
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Client `write(x, v)` addressed to the peer at replica `i`
    /// (steps 2(i)–(iv) of the prototype).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`] if `x ∉ X_i`,
    /// [`CoreError::UnknownReplica`] for a bad id.
    pub fn write(&mut self, i: ReplicaId, x: RegisterId, v: u64) -> Result<UpdateId, CoreError> {
        if i.index() >= self.replicas.len() {
            return Err(CoreError::UnknownReplica(i));
        }
        let clock = self.replicas[i.index()].write(&self.protocol, x, v)?;
        let id = self.oracle.on_issue(i, x);
        self.stats.updates_issued += 1;
        let update = Update {
            id,
            issuer: i,
            register: x,
            value: v,
            clock,
            issued_at: self.net.now(),
            received_at: self.net.now(),
        };
        for k in self.protocol.recipients(i, x) {
            let carries_value = self.protocol.stores_value(k, x);
            let bytes = update.wire_size(carries_value);
            if !carries_value {
                self.stats.metadata_only_messages += 1;
            }
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            // Each copy carries its per-link delivery sequence: the
            // receiver's watermark dedups on it, so the at-least-once
            // tolerance costs O(reordering window), not O(history).
            self.link_seq[i.index()][k.index()] += 1;
            let seq = self.link_seq[i.index()][k.index()];
            self.net
                .send(i.index(), k.index(), bytes, (seq, update.clone()));
        }
        Ok(id)
    }

    /// Client `read(x)` at replica `i` (step 1).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`] if `x ∉ X_i`.
    pub fn read(&self, i: ReplicaId, x: RegisterId) -> Result<Option<u64>, CoreError> {
        if i.index() >= self.replicas.len() {
            return Err(CoreError::UnknownReplica(i));
        }
        self.replicas[i.index()].read(&self.protocol, x)
    }

    /// Delivers the next in-flight message and drains the receiver's
    /// pending buffer. Returns false when the network is idle.
    pub fn step(&mut self) -> bool {
        self.step_detailed().is_some()
    }

    /// Like [`Cluster::step`] but reports which updates were applied at the
    /// receiving replica (used by relay schemes such as the ring breaker of
    /// Appendix D, which re-issue piggybacked updates on apply).
    pub fn step_detailed(&mut self) -> Option<(ReplicaId, Vec<Update<P::Clock>>)> {
        let delivery = self.net.deliver_next()?;
        let dst = ReplicaId(delivery.dst);
        let now = delivery.time;
        let (seq, update) = delivery.msg;
        if !self.recv[dst.index()][delivery.src].observe(seq) {
            // At-least-once duplicate: suppressed at the link, before the
            // replica (a re-delivered copy could never satisfy predicate
            // `J`'s equality clause and would wedge the pending buffer).
            self.dup_dropped[dst.index()] += 1;
            self.stats.duplicates_dropped += 1;
            return Some((dst, Vec::new()));
        }
        self.replicas[dst.index()].receive(update, now);
        let applied = self.replicas[dst.index()].drain(&self.protocol);
        for u in &applied {
            // Oracle check: the update counts as applied at dst only when
            // the register is really stored; metadata-only deliveries
            // (dummy copies) are merges, not applications.
            if self.protocol.share_graph().stores(dst, u.register) {
                if let Err(v) = self.oracle.on_apply(dst, u.id) {
                    self.verdict.safety.push(v);
                }
            }
            self.stats.applies += 1;
            self.apply_hist.record(now.since(u.issued_at));
            self.stall_hist.record(now.since(u.received_at));
        }
        self.stats.max_pending = self
            .stats
            .max_pending
            .max(self.replicas[dst.index()].max_pending());
        Some((dst, applied))
    }

    /// Runs until no message is scheduled (held-back messages remain held).
    /// Returns the number of deliveries performed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Releases all held links and runs to quiescence.
    pub fn release_and_settle(&mut self) -> usize {
        self.net.release_all();
        self.run_to_quiescence()
    }

    /// The verdict so far: safety violations observed during the run plus a
    /// liveness check against the current state.
    ///
    /// Meaningful at quiescence with no held-back messages; before that,
    /// in-flight updates show up as (transient) liveness gaps.
    pub fn verdict(&self) -> Verdict {
        let mut v = self.verdict.clone();
        v.liveness = self.oracle.check_liveness();
        v
    }

    /// Aggregate statistics; buffered-apply counters are folded in from the
    /// replicas, and the latency totals and percentile summaries from the
    /// apply/stall histograms.
    pub fn stats(&self) -> ClusterStats {
        let mut s = self.stats.clone();
        s.buffered_applies = self.replicas.iter().map(|r| r.buffered_applies()).sum();
        s.total_apply_latency = self.apply_hist.sum();
        s.total_pending_stall = self.stall_hist.sum();
        s.apply_latency = self.apply_hist.summary();
        s.pending_stall = self.stall_hist.summary();
        s
    }

    /// Access to the network, e.g. for hold/release link controls.
    pub fn net_mut(&mut self) -> &mut Network<(u64, Update<P::Clock>)> {
        &mut self.net
    }

    /// Read-only network access (stats, quiescence).
    pub fn net(&self) -> &Network<(u64, Update<P::Clock>)> {
        &self.net
    }

    /// Duplicate deliveries suppressed at replica `i`'s inbound links.
    pub fn dropped_duplicates(&self, i: ReplicaId) -> u64 {
        self.dup_dropped[i.index()]
    }

    /// Read-only replica access.
    pub fn replica(&self, i: ReplicaId) -> &Replica<P> {
        &self.replicas[i.index()]
    }

    /// The verification oracle.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Total pending-buffer occupancy across replicas right now.
    pub fn pending_total(&self) -> usize {
        self.replicas.iter().map(|r| r.pending_len()).sum()
    }
}

impl<P: Protocol> std::fmt::Debug for Cluster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("protocol", &self.protocol.name())
            .field("replicas", &self.replicas.len())
            .field("net", &self.net)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::{CompressedProtocol, EdgeProtocol, VectorProtocol};
    use prcc_graph::topologies;
    use prcc_net::{FixedDelay, UniformDelay};

    #[test]
    fn single_write_propagates() {
        let g = topologies::line(3);
        let mut c = Cluster::new(EdgeProtocol::new(g), Box::new(FixedDelay(3)));
        c.write(ReplicaId(1), RegisterId(0), 9).unwrap();
        c.write(ReplicaId(1), RegisterId(1), 8).unwrap();
        c.run_to_quiescence();
        assert_eq!(c.read(ReplicaId(0), RegisterId(0)).unwrap(), Some(9));
        assert_eq!(c.read(ReplicaId(2), RegisterId(1)).unwrap(), Some(8));
        assert!(c.verdict().is_consistent());
        let stats = c.stats();
        assert_eq!(stats.updates_issued, 2);
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.applies, 2);
    }

    #[test]
    fn random_workload_on_ring_is_consistent() {
        let g = topologies::ring(5);
        let mut c = Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(11, 1, 50)),
        );
        // Interleave writes and deliveries.
        for round in 0..40u64 {
            let i = ReplicaId((round % 5) as usize);
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            let x = regs[(round % 2) as usize];
            c.write(i, x, round).unwrap();
            if round % 3 == 0 {
                c.step();
            }
        }
        c.run_to_quiescence();
        let v = c.verdict();
        assert!(v.is_consistent(), "{v}");
        assert_eq!(c.pending_total(), 0, "pending must drain at quiescence");
    }

    #[test]
    fn compressed_protocol_matches_edge_protocol_results() {
        let g = topologies::figure5();
        let mut a = Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(5, 1, 30)),
        );
        let mut b = Cluster::new(
            CompressedProtocol::new(g.clone()),
            Box::new(UniformDelay::new(5, 1, 30)),
        );
        for round in 0..30u64 {
            let i = ReplicaId((round % 4) as usize);
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            let x = regs[(round as usize) % regs.len()];
            a.write(i, x, round).unwrap();
            b.write(i, x, round).unwrap();
        }
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert!(a.verdict().is_consistent());
        assert!(b.verdict().is_consistent());
        // Same final register values everywhere (same seed → same delivery
        // schedule; both protocols enforce causal order).
        for i in g.replicas() {
            for x in g.registers_of(i).iter() {
                assert_eq!(
                    a.read(i, x).unwrap(),
                    b.read(i, x).unwrap(),
                    "replica {i} register {x}"
                );
            }
        }
    }

    #[test]
    fn vector_protocol_broadcasts_metadata() {
        let g = topologies::line(3);
        let mut c = Cluster::new(VectorProtocol::new(g), Box::new(FixedDelay(2)));
        c.write(ReplicaId(0), RegisterId(0), 1).unwrap();
        c.run_to_quiescence();
        let stats = c.stats();
        // Register 0 is shared by replicas 0,1 — but metadata goes to 2 as
        // well.
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.metadata_only_messages, 1);
        assert!(c.verdict().is_consistent());
        // The dummy copy must not materialize a value at replica 2.
        assert!(c.replica(ReplicaId(2)).peek(RegisterId(0)).is_none());
    }

    #[test]
    fn held_links_delay_but_do_not_lose_updates() {
        let g = topologies::line(2);
        let mut c = Cluster::new(EdgeProtocol::new(g), Box::new(FixedDelay(1)));
        c.net_mut().hold_link(0, 1);
        c.write(ReplicaId(0), RegisterId(0), 5).unwrap();
        c.run_to_quiescence();
        // Not yet delivered.
        assert_eq!(c.read(ReplicaId(1), RegisterId(0)).unwrap(), None);
        assert!(!c.verdict().liveness.is_empty(), "transiently incomplete");
        c.release_and_settle();
        assert_eq!(c.read(ReplicaId(1), RegisterId(0)).unwrap(), Some(5));
        assert!(c.verdict().is_consistent());
    }

    #[test]
    fn duplicate_deliveries_are_tolerated() {
        // At-least-once channels: every 2nd message is delivered twice.
        // Without receiver-side dedup the duplicate could never satisfy
        // J's equality clause and would wedge the pending buffer.
        let g = topologies::ring(4);
        let mut c = Cluster::new(
            EdgeProtocol::new(g.clone()),
            Box::new(UniformDelay::new(13, 1, 25)),
        );
        c.net_mut().set_duplicate_every(2);
        for round in 0..30u64 {
            let i = ReplicaId((round % 4) as usize);
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            c.write(i, regs[((round / 4) % 2) as usize], round).unwrap();
        }
        c.run_to_quiescence();
        assert!(c.verdict().is_consistent());
        assert_eq!(c.pending_total(), 0, "no wedged duplicates");
        let dropped: u64 = g.replicas().map(|i| c.dropped_duplicates(i)).sum();
        assert!(dropped > 0, "duplicates must actually have been injected");
        assert_eq!(c.stats().duplicates_dropped, dropped);
    }

    #[test]
    fn errors_are_propagated() {
        let g = topologies::line(2);
        let mut c = Cluster::new(EdgeProtocol::new(g), Box::new(FixedDelay(1)));
        assert!(c.write(ReplicaId(5), RegisterId(0), 1).is_err());
        assert!(c.write(ReplicaId(0), RegisterId(9), 1).is_err());
        assert!(c.read(ReplicaId(9), RegisterId(0)).is_err());
    }

    #[test]
    fn stats_track_latency() {
        let g = topologies::line(2);
        let mut c = Cluster::new(EdgeProtocol::new(g), Box::new(FixedDelay(7)));
        c.write(ReplicaId(0), RegisterId(0), 1).unwrap();
        c.run_to_quiescence();
        let s = c.stats();
        assert_eq!(s.applies, 1);
        assert_eq!(s.mean_apply_latency(), 7.0);
        assert_eq!(s.mean_pending_stall(), 0.0);
    }
}
