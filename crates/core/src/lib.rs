//! The replica prototype and peer-to-peer clusters.
//!
//! Implements the algorithm prototype of Section 2.1 generically over a
//! [`prcc_clock::Protocol`]:
//!
//! 1. `read(x)` answers from the local copy.
//! 2. `write(x, v)` atomically applies locally, `advance`s the timestamp,
//!    and sends `update(i, τ_i, x, v)` to every other replica storing `x`
//!    (or whatever the protocol's `recipients` says, for dummy-register
//!    baselines).
//! 3. Received updates join the `pending` set.
//! 4. Any pending update whose predicate `J` holds is applied atomically:
//!    value written (if the register is really stored), timestamps merged,
//!    update removed from `pending`.
//!
//! A [`Cluster`] runs `R` replicas over a simulated [`prcc_net::Network`]
//! and feeds every issue/apply event to the [`prcc_checker::Oracle`], so
//! each run yields a causal-consistency [`prcc_checker::Verdict`] plus
//! metadata/latency statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod dedup;
pub mod epoch;
mod error;
pub mod multicast;
mod replica;
mod stats;
mod update;

pub use cluster::Cluster;
pub use dedup::SeqWatermark;
pub use epoch::EpochedCluster;
pub use error::CoreError;
pub use multicast::CausalMulticast;
pub use replica::{Replica, ReplicaState};
pub use stats::ClusterStats;
pub use update::Update;
