//! Aggregate run statistics.

use prcc_telemetry::HistSummary;
use serde::{Deserialize, Serialize};

/// Summary of a cluster run: traffic, metadata and latency figures used by
/// the experiment tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Updates issued by clients.
    pub updates_issued: u64,
    /// Update messages sent (≥ issued × recipients).
    pub messages_sent: u64,
    /// Total bytes on the wire.
    pub bytes_sent: u64,
    /// Messages that carried metadata only (dummy-register copies).
    pub metadata_only_messages: u64,
    /// Remote applies performed.
    pub applies: u64,
    /// Applies that waited in a pending buffer behind other traffic.
    pub buffered_applies: u64,
    /// Largest pending buffer observed at any replica.
    pub max_pending: usize,
    /// Sum over applies of (apply time − issue time), in ticks. Derived
    /// from [`ClusterStats::apply_latency`]'s histogram; kept as a field so
    /// the experiment tables stay schema-stable.
    pub total_apply_latency: u64,
    /// Sum over applies of (apply time − receive time), in ticks — time
    /// spent blocked in `pending` (false/true dependency stalls). Derived
    /// from [`ClusterStats::pending_stall`]'s histogram.
    pub total_pending_stall: u64,
    /// Distribution of (apply time − issue time) over applies, in ticks —
    /// the simulator's visibility latency.
    pub apply_latency: HistSummary,
    /// Distribution of (apply time − receive time) over applies, in ticks —
    /// the paper's false-dependency stall, now with tails, not just a mean.
    pub pending_stall: HistSummary,
    /// Duplicate deliveries suppressed by the per-link watermarks
    /// (at-least-once channel tolerance).
    pub duplicates_dropped: u64,
    /// Per-replica timestamp entries (static metadata size).
    pub timestamp_entries: Vec<usize>,
}

impl ClusterStats {
    /// Mean end-to-end apply latency in ticks.
    pub fn mean_apply_latency(&self) -> f64 {
        if self.applies == 0 {
            0.0
        } else {
            self.total_apply_latency as f64 / self.applies as f64
        }
    }

    /// Mean time updates spent blocked in pending buffers.
    pub fn mean_pending_stall(&self) -> f64 {
        if self.applies == 0 {
            0.0
        } else {
            self.total_pending_stall as f64 / self.applies as f64
        }
    }

    /// Mean messages per issued update.
    pub fn messages_per_update(&self) -> f64 {
        if self.updates_issued == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.updates_issued as f64
        }
    }

    /// Mean metadata bytes per message.
    pub fn bytes_per_message(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Total timestamp entries across replicas.
    pub fn total_timestamp_entries(&self) -> usize {
        self.timestamp_entries.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ClusterStats {
            updates_issued: 10,
            messages_sent: 20,
            bytes_sent: 400,
            applies: 20,
            total_apply_latency: 100,
            total_pending_stall: 40,
            timestamp_entries: vec![4, 4, 6],
            ..Default::default()
        };
        assert_eq!(s.mean_apply_latency(), 5.0);
        assert_eq!(s.mean_pending_stall(), 2.0);
        assert_eq!(s.messages_per_update(), 2.0);
        assert_eq!(s.bytes_per_message(), 20.0);
        assert_eq!(s.total_timestamp_entries(), 14);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = ClusterStats::default();
        assert_eq!(s.mean_apply_latency(), 0.0);
        assert_eq!(s.messages_per_update(), 0.0);
        assert_eq!(s.bytes_per_message(), 0.0);
        assert_eq!(s.mean_pending_stall(), 0.0);
    }
}
