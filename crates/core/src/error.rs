//! Error type for client-facing operations.

use prcc_graph::{RegisterId, ReplicaId};
use std::error::Error;
use std::fmt;

/// Errors returned by cluster/replica operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The replica does not store the requested register.
    NotStored {
        /// The replica the operation was addressed to.
        replica: ReplicaId,
        /// The register it does not store.
        register: RegisterId,
    },
    /// Replica id out of range.
    UnknownReplica(ReplicaId),
    /// A restored replica state does not fit the protocol configuration.
    InvalidState(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotStored { replica, register } => {
                write!(f, "replica {replica} does not store register {register}")
            }
            CoreError::UnknownReplica(r) => write!(f, "unknown replica {r}"),
            CoreError::InvalidState(reason) => {
                write!(f, "invalid restored replica state: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CoreError::NotStored {
            replica: ReplicaId(1),
            register: RegisterId(2),
        };
        assert_eq!(e.to_string(), "replica r1 does not store register x2");
        assert!(CoreError::UnknownReplica(ReplicaId(9))
            .to_string()
            .contains("r9"));
    }
}
