//! A single replica conforming to the Section 2.1 prototype.

use crate::update::Update;
use crate::CoreError;
use prcc_clock::Protocol;
use prcc_graph::{RegisterId, ReplicaId};
use prcc_net::VirtualTime;

/// A plain-data export of a replica's full mutable state, used by the
/// durability layer to snapshot and restore replicas across restarts.
///
/// Every field is O(live state): since duplicate suppression moved to the
/// transport layer ([`crate::SeqWatermark`]), the export no longer carries
/// the historical dedup set, so its size is bounded by the register count
/// plus the pending buffer — not by how long the replica has been running.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaState<C> {
    /// The replica's id.
    pub id: ReplicaId,
    /// Local register copies (`None` = not stored or never written).
    pub store: Vec<Option<u64>>,
    /// The current timestamp `τ_i`.
    pub clock: C,
    /// Updates buffered awaiting predicate `J`, in receipt order.
    pub pending: Vec<Update<C>>,
    /// Applies performed from the network.
    pub applies: u64,
    /// Applies that waited behind other messages.
    pub buffered_applies: u64,
    /// High-water mark of the pending buffer.
    pub max_pending: usize,
}

/// Replica state: local register copies, the timestamp `τ_i`, and the
/// `pending` buffer of undeliverable updates.
///
/// The replica is passive: a [`crate::Cluster`] (or the threaded runtime)
/// drives it by calling [`Replica::write`], [`Replica::receive`] and
/// [`Replica::drain`], and is responsible for actually transmitting the
/// messages `write` asks it to send. This keeps the replica synchronous and
/// directly testable.
#[derive(Debug, Clone)]
pub struct Replica<P: Protocol> {
    id: ReplicaId,
    /// Local copies, indexed by register; `None` for registers this replica
    /// does not store (or has not yet written).
    store: Vec<Option<u64>>,
    clock: P::Clock,
    pending: Vec<Update<P::Clock>>,
    /// Number of updates applied from the network (not own writes).
    applies: u64,
    /// Applies that had to wait in `pending` at least one drain cycle.
    buffered_applies: u64,
    /// High-water mark of the pending buffer.
    max_pending: usize,
}

impl<P: Protocol> Replica<P> {
    /// Creates replica `id` with an all-zero timestamp.
    pub fn new(protocol: &P, id: ReplicaId) -> Self {
        Replica {
            id,
            store: vec![None; protocol.share_graph().num_registers()],
            clock: protocol.new_clock(id),
            pending: Vec::new(),
            applies: 0,
            buffered_applies: 0,
            max_pending: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Step 1: respond to `read(x)` with the local copy.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`] if `x ∉ X_i`.
    pub fn read(&self, protocol: &P, x: RegisterId) -> Result<Option<u64>, CoreError> {
        if !protocol.share_graph().stores(self.id, x) {
            return Err(CoreError::NotStored {
                replica: self.id,
                register: x,
            });
        }
        Ok(self.store[x.index()])
    }

    /// Step 2: handle `write(x, v)` — write locally, advance the timestamp,
    /// and return the timestamp to attach to the outgoing `update`
    /// messages. The caller sends them to `protocol.recipients(i, x)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`] if `x ∉ X_i`.
    pub fn write(&mut self, protocol: &P, x: RegisterId, v: u64) -> Result<P::Clock, CoreError> {
        if !protocol.share_graph().stores(self.id, x) {
            return Err(CoreError::NotStored {
                replica: self.id,
                register: x,
            });
        }
        self.store[x.index()] = Some(v);
        protocol.advance(self.id, &mut self.clock, x);
        Ok(self.clock.clone())
    }

    /// Step 3: enqueue a received update into `pending`.
    ///
    /// The caller (the transport layer) must deliver every update copy **at
    /// most once**: a re-delivered duplicate could never satisfy the
    /// equality clause of predicate `J` and would pin the pending buffer
    /// forever. At-least-once channels therefore deduplicate *before* this
    /// call, using their per-link sequence numbers and a
    /// [`crate::SeqWatermark`] — which is exact in O(reordering window)
    /// memory, where the replica-level id set this replaces was O(history).
    pub fn receive(&mut self, mut update: Update<P::Clock>, now: VirtualTime) {
        update.received_at = now;
        self.pending.push(update);
        self.max_pending = self.max_pending.max(self.pending.len());
    }

    /// Step 4: repeatedly scan `pending`, applying every update whose
    /// predicate `J` holds, until a fixpoint. Returns the applied updates in
    /// application order (the caller reports them to the oracle).
    pub fn drain(&mut self, protocol: &P) -> Vec<Update<P::Clock>> {
        let mut applied = Vec::new();
        while let Some(pos) = self.pending.iter().position(|u| {
            protocol.deliverable(self.id, &self.clock, u.issuer, &u.clock, u.register)
        }) {
            let u = self.pending.swap_remove(pos);
            // (i) write the value — unless this replica holds only a dummy
            // copy (full-replication emulation), in which case the message
            // carries metadata only.
            if protocol.stores_value(self.id, u.register) {
                self.store[u.register.index()] = Some(u.value);
            }
            // (ii) merge timestamps.
            protocol.merge(self.id, &mut self.clock, u.issuer, &u.clock);
            self.applies += 1;
            if !applied.is_empty() || self.pending_has_older(&u) {
                self.buffered_applies += 1;
            }
            applied.push(u);
        }
        applied
    }

    fn pending_has_older(&self, u: &Update<P::Clock>) -> bool {
        // Heuristic stall detector: something received earlier is still
        // pending, so this apply was out of receipt order.
        self.pending.iter().any(|p| p.received_at < u.received_at)
    }

    /// The current timestamp `τ_i`.
    pub fn clock(&self) -> &P::Clock {
        &self.clock
    }

    /// Updates currently buffered in `pending`.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of the pending buffer.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Applies performed from the network.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// Applies that waited behind other messages.
    pub fn buffered_applies(&self) -> u64 {
        self.buffered_applies
    }

    /// Direct store access for assertions (any register index).
    pub fn peek(&self, x: RegisterId) -> Option<u64> {
        self.store[x.index()]
    }

    /// Exports the replica's full mutable state for snapshotting.
    pub fn export_state(&self) -> ReplicaState<P::Clock> {
        ReplicaState {
            id: self.id,
            store: self.store.clone(),
            clock: self.clock.clone(),
            pending: self.pending.clone(),
            applies: self.applies,
            buffered_applies: self.buffered_applies,
            max_pending: self.max_pending,
        }
    }

    /// Rebuilds a replica from an exported state — the inverse of
    /// [`Replica::export_state`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidState`] when the store size does not match the
    /// protocol's register count (the snapshot belongs to a different
    /// configuration).
    pub fn from_state(protocol: &P, state: ReplicaState<P::Clock>) -> Result<Self, CoreError> {
        if state.store.len() != protocol.share_graph().num_registers() {
            return Err(CoreError::InvalidState(
                "store size differs from the share graph's register count",
            ));
        }
        Ok(Replica {
            id: state.id,
            store: state.store,
            clock: state.clock,
            pending: state.pending,
            applies: state.applies,
            buffered_applies: state.buffered_applies,
            max_pending: state.max_pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_checker::UpdateId;
    use prcc_clock::EdgeProtocol;
    use prcc_graph::topologies;

    fn update<P: Protocol>(
        id: u64,
        issuer: ReplicaId,
        x: RegisterId,
        v: u64,
        clock: P::Clock,
    ) -> Update<P::Clock> {
        Update {
            id: UpdateId(id),
            issuer,
            register: x,
            value: v,
            clock,
            issued_at: VirtualTime::ZERO,
            received_at: VirtualTime::ZERO,
        }
    }

    #[test]
    fn read_write_round_trip() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut r = Replica::new(&p, ReplicaId(0));
        assert_eq!(r.read(&p, RegisterId(0)).unwrap(), None);
        r.write(&p, RegisterId(0), 7).unwrap();
        assert_eq!(r.read(&p, RegisterId(0)).unwrap(), Some(7));
    }

    #[test]
    fn unknown_register_rejected() {
        let g = topologies::line(3);
        let p = EdgeProtocol::new(g);
        let mut r = Replica::new(&p, ReplicaId(0));
        // Register 1 is shared by replicas 1 and 2 only.
        assert!(matches!(
            r.read(&p, RegisterId(1)),
            Err(CoreError::NotStored { .. })
        ));
        assert!(r.write(&p, RegisterId(1), 1).is_err());
    }

    #[test]
    fn out_of_order_updates_buffer_until_deliverable() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut sender = Replica::new(&p, ReplicaId(0));
        let mut receiver = Replica::new(&p, ReplicaId(1));
        let t1 = sender.write(&p, RegisterId(0), 1).unwrap();
        let t2 = sender.write(&p, RegisterId(0), 2).unwrap();
        // Deliver the second update first: it must buffer.
        receiver.receive(
            update::<EdgeProtocol>(1, ReplicaId(0), RegisterId(0), 2, t2),
            VirtualTime(5),
        );
        assert!(receiver.drain(&p).is_empty());
        assert_eq!(receiver.pending_len(), 1);
        receiver.receive(
            update::<EdgeProtocol>(0, ReplicaId(0), RegisterId(0), 1, t1),
            VirtualTime(6),
        );
        let applied = receiver.drain(&p);
        assert_eq!(applied.len(), 2);
        assert_eq!(applied[0].value, 1);
        assert_eq!(applied[1].value, 2);
        assert_eq!(receiver.read(&p, RegisterId(0)).unwrap(), Some(2));
        assert_eq!(receiver.pending_len(), 0);
        assert_eq!(receiver.applies(), 2);
        assert!(receiver.buffered_applies() >= 1);
        assert_eq!(receiver.max_pending(), 2);
    }

    #[test]
    fn state_export_restore_round_trips() {
        let g = topologies::line(2);
        let p = EdgeProtocol::new(g);
        let mut sender = Replica::new(&p, ReplicaId(0));
        let mut receiver = Replica::new(&p, ReplicaId(1));
        let t1 = sender.write(&p, RegisterId(0), 1).unwrap();
        let t2 = sender.write(&p, RegisterId(0), 2).unwrap();
        // Deliver out of order so the restored state carries a non-empty
        // pending buffer.
        receiver.receive(
            update::<EdgeProtocol>(1, ReplicaId(0), RegisterId(0), 2, t2),
            VirtualTime(5),
        );
        assert!(receiver.drain(&p).is_empty());
        let state = receiver.export_state();
        assert_eq!(state.pending.len(), 1);
        let mut restored = Replica::from_state(&p, state.clone()).expect("restore");
        assert_eq!(restored.export_state(), state);
        // The restored replica picks up exactly where the original left
        // off: delivering the missing first update drains both.
        restored.receive(
            update::<EdgeProtocol>(0, ReplicaId(0), RegisterId(0), 1, t1),
            VirtualTime(6),
        );
        assert_eq!(restored.drain(&p).len(), 2);
        assert_eq!(restored.read(&p, RegisterId(0)).unwrap(), Some(2));
        // A state sized for a different configuration is refused.
        let other = EdgeProtocol::new(topologies::line(3));
        assert!(Replica::from_state(&other, restored.export_state()).is_err());
    }

    #[test]
    fn drain_reaches_fixpoint_across_chains() {
        let g = topologies::clique_full(3, 1);
        let p = EdgeProtocol::new(g);
        let x = RegisterId(0);
        let mut r0 = Replica::new(&p, ReplicaId(0));
        let mut r1 = Replica::new(&p, ReplicaId(1));
        let mut r2 = Replica::new(&p, ReplicaId(2));
        let t0 = r0.write(&p, x, 10).unwrap();
        let u0 = update::<EdgeProtocol>(0, ReplicaId(0), x, 10, t0);
        r1.receive(u0.clone(), VirtualTime(1));
        r1.drain(&p);
        let t1 = r1.write(&p, x, 11).unwrap();
        let u1 = update::<EdgeProtocol>(1, ReplicaId(1), x, 11, t1);
        // r2 receives u1 before u0; one drain call applies both once u0
        // arrives.
        r2.receive(u1, VirtualTime(2));
        assert!(r2.drain(&p).is_empty());
        r2.receive(u0, VirtualTime(3));
        let applied = r2.drain(&p);
        assert_eq!(applied.len(), 2);
        assert_eq!(r2.peek(x), Some(11));
    }
}
