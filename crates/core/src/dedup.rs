//! Bounded-memory duplicate suppression for sequenced channels.
//!
//! At-least-once transports (the service's resend-after-reconnect windows,
//! the simulator's duplicate injection) can deliver an update more than
//! once, and a re-delivered duplicate could never satisfy the equality
//! clause of predicate `J` — it would pin the receiver's pending buffer
//! forever. The original defense was a per-replica `HashSet` of every
//! update id ever received: exact, but O(history).
//!
//! [`SeqWatermark`] replaces it with O(live state): the transport assigns
//! each delivery on a channel a contiguous sequence number (the service's
//! wire-v4 per-link seqs; the simulator's per-link send counters), and the
//! receiver keeps one *contiguous high-water mark* plus a small residue of
//! out-of-order sequences above it. A sequence at or below the high-water,
//! or present in the residue, is a duplicate; anything else is fresh. The
//! residue shrinks back into the high-water as gaps fill, so its size is
//! bounded by the channel's reordering window — not by history.
//!
//! The high-water doubles as the channel's *acknowledgement line*: every
//! sequence at or below it has been seen, which is exactly the "durably
//! received up to `s`" promise the service's acks make.

use std::collections::BTreeSet;

/// Exact duplicate detection over a contiguously sequenced channel, in
/// O(reordering window) memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqWatermark {
    /// Every sequence in `1..=high` has been observed.
    high: u64,
    /// Observed sequences above `high` (out-of-order arrivals), exclusive
    /// of it; drains into `high` as the gaps below them fill.
    residue: BTreeSet<u64>,
}

impl SeqWatermark {
    /// A watermark that has observed nothing.
    pub fn new() -> Self {
        SeqWatermark::default()
    }

    /// Restores a watermark from its exported parts (e.g. a snapshot).
    /// Residue entries at or below the high-water are redundant and
    /// dropped; the invariant re-folds contiguous residue into `high`.
    pub fn from_parts(high: u64, residue: impl IntoIterator<Item = u64>) -> Self {
        let mut w = SeqWatermark {
            high,
            residue: residue.into_iter().filter(|&s| s > high).collect(),
        };
        w.fold();
        w
    }

    fn fold(&mut self) {
        while self.residue.remove(&(self.high + 1)) {
            self.high += 1;
        }
    }

    /// Records an observation of `seq` (must be nonzero). Returns `true`
    /// when the sequence is fresh (first sighting), `false` for a
    /// duplicate.
    pub fn observe(&mut self, seq: u64) -> bool {
        debug_assert!(seq > 0, "sequence numbers start at 1");
        if seq <= self.high || !self.residue.insert(seq) {
            return false;
        }
        self.fold();
        true
    }

    /// Whether `seq` has been observed.
    pub fn contains(&self, seq: u64) -> bool {
        seq != 0 && (seq <= self.high || self.residue.contains(&seq))
    }

    /// The contiguous high-water mark: every sequence in `1..=high()` has
    /// been observed. This is the channel's acknowledgement line.
    pub fn high(&self) -> u64 {
        self.high
    }

    /// The out-of-order residue above the high-water, ascending.
    pub fn residue(&self) -> impl Iterator<Item = u64> + '_ {
        self.residue.iter().copied()
    }

    /// Number of out-of-order sequences currently held.
    pub fn residue_len(&self) -> usize {
        self.residue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn in_order_stream_keeps_no_residue() {
        let mut w = SeqWatermark::new();
        for s in 1..=100 {
            assert!(w.observe(s));
        }
        assert_eq!(w.high(), 100);
        assert_eq!(w.residue_len(), 0);
        assert!(!w.observe(37), "replay below the line is a duplicate");
    }

    #[test]
    fn out_of_order_residue_folds_when_gaps_fill() {
        let mut w = SeqWatermark::new();
        assert!(w.observe(3));
        assert!(w.observe(2));
        assert_eq!(w.high(), 0);
        assert_eq!(w.residue_len(), 2);
        assert!(w.observe(1));
        assert_eq!(w.high(), 3);
        assert_eq!(w.residue_len(), 0);
    }

    #[test]
    fn from_parts_round_trips_and_refolds() {
        let mut w = SeqWatermark::new();
        for s in [1, 2, 5, 9] {
            w.observe(s);
        }
        let restored = SeqWatermark::from_parts(w.high(), w.residue());
        assert_eq!(restored, w);
        // A contiguous residue handed to from_parts folds away.
        let folded = SeqWatermark::from_parts(2, [3, 4, 7]);
        assert_eq!(folded.high(), 4);
        assert_eq!(folded.residue().collect::<Vec<_>>(), vec![7]);
        // Redundant residue at or below the high-water is dropped.
        let trimmed = SeqWatermark::from_parts(5, [2, 5, 8]);
        assert_eq!(trimmed.high(), 5);
        assert_eq!(trimmed.residue().collect::<Vec<_>>(), vec![8]);
    }

    /// The satellite property: watermark dedup is *equivalent to the dedup
    /// set* on arbitrarily shuffled and duplicated delivery orders.
    #[test]
    fn watermark_equals_dedup_set_on_shuffled_duplicated_streams() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move |bound: usize| -> usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound.max(1)
        };
        for round in 0..50 {
            let n = 1 + next(60) as u64;
            // Build a delivery schedule: every seq 1..=n at least once,
            // plus random duplicates, then shuffle.
            let mut schedule: Vec<u64> = (1..=n).collect();
            for _ in 0..next(40) {
                schedule.push(1 + next(n as usize) as u64);
            }
            for i in (1..schedule.len()).rev() {
                schedule.swap(i, next(i + 1));
            }
            let mut watermark = SeqWatermark::new();
            let mut set: HashSet<u64> = HashSet::new();
            let mut max_residue = 0;
            for &s in &schedule {
                assert_eq!(
                    watermark.observe(s),
                    set.insert(s),
                    "round {round}: verdicts diverged at seq {s}"
                );
                max_residue = max_residue.max(watermark.residue_len());
            }
            // Complete stream: the watermark has fully folded.
            assert_eq!(watermark.high(), n, "round {round}");
            assert_eq!(watermark.residue_len(), 0, "round {round}");
            assert!(max_residue <= n as usize);
        }
    }
}
