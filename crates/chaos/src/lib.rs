//! Seeded nemesis proxy: deterministic fault injection between real
//! TCP sockets.
//!
//! The simulator exercises the paper's adversarial channel model
//! in-process; this crate brings the same adversary to the deployed
//! service. A [`ChaosNemesis`] interposes one TCP proxy per directed
//! peer link and applies schedule-driven faults — delay, one-slot
//! reorder, duplication, silent drops, connection cuts at and inside
//! frame boundaries, and rotating split-brain partitions — where every
//! decision is drawn from a [`ChaosSchedule`] that is a pure function of
//! `(seed, link, frame index)`. A failing run therefore replays exactly
//! from its seed, and the realized decision log can be checked
//! bit-for-bit against [`ChaosSchedule::replay_link`].
//!
//! Fault semantics lean on the service's own recovery machinery rather
//! than faking reliability inside the proxy:
//!
//! * **Drop / partition** — the frame is swallowed. The sender's acked
//!   resend window retains it; the next connection cut (scheduled, or
//!   the final [`ChaosNemesis::heal`]) forces a resend from the acked
//!   watermark.
//! * **Cut / mid-frame cut** — the proxied connection is severed (for
//!   mid-frame cuts, after forwarding a strict prefix of the encoded
//!   frame). The dialer's backoff loop re-establishes the link and the
//!   resume handshake replays unacked frames.
//! * **Reorder** — the frame is held back and emitted after the next
//!   forwarded frame, a one-slot non-FIFO inversion.
//!
//! Handshake frames (the first frame of every connection) and protected
//! tags (consistent-cut markers) pass through unfaulted and unscheduled:
//! markers must keep their position in the channel or the cut they
//! delimit would not be consistent, and they deliberately do not consume
//! schedule indices so fault decisions stay aligned with data frames
//! across runs with and without audits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use prcc_net::chaos::mix64;
pub use prcc_net::chaos::{FaultOp, FaultProfile, LinkFaultStream};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Frames larger than this are treated as a protocol violation and
/// sever the proxied connection (mirrors the service's frame cap).
const MAX_FRAME_BYTES: usize = 64 << 20;

/// Configuration of one nemesis run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every per-link decision stream derives from it.
    pub seed: u64,
    /// Per-mille fault rates applied to every directed link.
    pub profile: FaultProfile,
    /// Period, in per-link data frames, of the rotating partition
    /// windows. `0` disables partitions.
    pub partition_every: u64,
    /// Leading frames of each period spent partitioned (frames on links
    /// touching the window's isolated node are swallowed).
    pub partition_len: u64,
    /// First-payload-byte tags that pass through unfaulted and without
    /// consuming a schedule index (consistent-cut markers).
    pub protect_tags: Vec<u8>,
}

impl ChaosConfig {
    /// A light-profile config with partitions disabled.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            profile: FaultProfile::light(),
            partition_every: 0,
            partition_len: 0,
            protect_tags: Vec::new(),
        }
    }
}

/// One realized (or replayed) decision on a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDecision {
    /// Data-frame index on the link this decision applied to.
    pub index: u64,
    /// The fault applied. Partition swallows log as [`FaultOp::Drop`].
    pub op: FaultOp,
    /// True when the op was forced by an active partition window rather
    /// than drawn from the link's fault stream.
    pub partition: bool,
}

/// Aggregate counts over a schedule's realized decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames passed through untouched.
    pub delivered: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Frames held back one slot.
    pub reordered: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames silently dropped by the fault stream.
    pub dropped: u64,
    /// Connections severed at a frame boundary.
    pub cut: u64,
    /// Connections severed mid-frame.
    pub cut_mid: u64,
    /// Frames swallowed by partition windows.
    pub partition_dropped: u64,
}

impl FaultCounts {
    fn absorb(&mut self, d: &LinkDecision) {
        if d.partition {
            self.partition_dropped += 1;
            return;
        }
        match d.op {
            FaultOp::Deliver => self.delivered += 1,
            FaultOp::Delay(_) => self.delayed += 1,
            FaultOp::Reorder => self.reordered += 1,
            FaultOp::Duplicate => self.duplicated += 1,
            FaultOp::Drop => self.dropped += 1,
            FaultOp::Cut => self.cut += 1,
            FaultOp::CutMid(_) => self.cut_mid += 1,
        }
    }

    /// Total faulted (non-`Deliver`) decisions.
    pub fn faulted(&self) -> u64 {
        self.delayed
            + self.reordered
            + self.duplicated
            + self.dropped
            + self.cut
            + self.cut_mid
            + self.partition_dropped
    }
}

struct LinkState {
    stream: LinkFaultStream,
    frames: u64,
    log: Vec<LinkDecision>,
}

/// The deterministic decision source shared by every link proxy.
///
/// `decide(src, dst)` draws the next decision for the link and appends
/// it to the realized log; the same `(config, node count)` always yields
/// the same decision at the same index, which
/// [`ChaosSchedule::replay_link`] recomputes without running anything.
pub struct ChaosSchedule {
    cfg: ChaosConfig,
    n: usize,
    links: Mutex<HashMap<(usize, usize), LinkState>>,
    healed: AtomicBool,
}

impl ChaosSchedule {
    /// Builds the schedule for an `n`-node topology.
    pub fn new(cfg: ChaosConfig, n: usize) -> Self {
        ChaosSchedule {
            cfg,
            n,
            links: Mutex::named(HashMap::new(), "chaos-schedule-links"),
            healed: AtomicBool::new(false),
        }
    }

    /// The config the schedule was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Draws the decision for the next data frame on `src → dst` and
    /// records it in the realized log.
    pub fn decide(&self, src: usize, dst: usize) -> LinkDecision {
        let mut links = self.links.lock();
        let st = links.entry((src, dst)).or_insert_with(|| LinkState {
            stream: LinkFaultStream::new(self.cfg.seed, src, dst, self.cfg.profile),
            frames: 0,
            log: Vec::new(),
        });
        let index = st.frames;
        st.frames += 1;
        let d = if partition_active(&self.cfg, self.n, src, dst, index) {
            LinkDecision {
                index,
                op: FaultOp::Drop,
                partition: true,
            }
        } else {
            let (_, op) = st.stream.next_op();
            LinkDecision {
                index,
                op,
                partition: false,
            }
        };
        st.log.push(d);
        d
    }

    /// Switches the schedule to pass-through: link proxies stop drawing
    /// decisions and forward everything. The realized log freezes.
    pub fn set_healed(&self) {
        self.healed.store(true, Ordering::SeqCst);
    }

    /// True once [`ChaosSchedule::set_healed`] has been called.
    pub fn is_healed(&self) -> bool {
        self.healed.load(Ordering::SeqCst)
    }

    /// The realized decision log, sorted by directed link.
    pub fn decision_log(&self) -> Vec<((usize, usize), Vec<LinkDecision>)> {
        let links = self.links.lock();
        let mut out: Vec<_> = links.iter().map(|(k, st)| (*k, st.log.clone())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Aggregate fault counts over the realized log.
    pub fn fault_counts(&self) -> FaultCounts {
        let links = self.links.lock();
        let mut c = FaultCounts::default();
        for st in links.values() {
            for d in &st.log {
                c.absorb(d);
            }
        }
        c
    }

    /// Pure replay: the first `count` decisions the schedule would draw
    /// on `src → dst` under `cfg` in an `n`-node topology. A live run's
    /// realized per-link log is always a prefix-equal slice of this.
    pub fn replay_link(
        cfg: &ChaosConfig,
        n: usize,
        src: usize,
        dst: usize,
        count: u64,
    ) -> Vec<LinkDecision> {
        let mut stream = LinkFaultStream::new(cfg.seed, src, dst, cfg.profile);
        (0..count)
            .map(|index| {
                if partition_active(cfg, n, src, dst, index) {
                    LinkDecision {
                        index,
                        op: FaultOp::Drop,
                        partition: true,
                    }
                } else {
                    let (_, op) = stream.next_op();
                    LinkDecision {
                        index,
                        op,
                        partition: false,
                    }
                }
            })
            .collect()
    }

    /// The node isolated by partition window `w` (all its links swallow
    /// frames while the window is active on them).
    pub fn isolated_node(cfg: &ChaosConfig, n: usize, window: u64) -> usize {
        (mix64(cfg.seed ^ window.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % n.max(1) as u64) as usize
    }
}

fn partition_active(cfg: &ChaosConfig, n: usize, src: usize, dst: usize, index: u64) -> bool {
    if cfg.partition_every == 0 || cfg.partition_len == 0 {
        return false;
    }
    let window = index / cfg.partition_every;
    if index % cfg.partition_every >= cfg.partition_len {
        return false;
    }
    let iso = ChaosSchedule::isolated_node(cfg, n, window);
    iso == src || iso == dst
}

/// The running nemesis: one TCP proxy per directed peer link.
///
/// `launch` binds a listener per link `(src, dst)`;
/// [`ChaosNemesis::peer_addrs_for`] hands node `src` a peer-address
/// vector routing every outbound link through its proxy. Connections are
/// forwarded frame-by-frame with faults applied in the `src → dst`
/// direction; the reverse direction (acks, handshake replies) is copied
/// verbatim so recovery itself is never wedged by the nemesis.
pub struct ChaosNemesis {
    schedule: Arc<ChaosSchedule>,
    upstream: Vec<SocketAddr>,
    proxies: HashMap<(usize, usize), SocketAddr>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    accepters: Vec<thread::JoinHandle<()>>,
}

impl ChaosNemesis {
    /// Starts one proxy per directed link over the given upstream peer
    /// listener addresses.
    pub fn launch(upstream: Vec<SocketAddr>, cfg: ChaosConfig) -> io::Result<ChaosNemesis> {
        let n = upstream.len();
        let schedule = Arc::new(ChaosSchedule::new(cfg, n));
        let conns = Arc::new(Mutex::named(Vec::new(), "chaos-nemesis-conns"));
        let stop = Arc::new(AtomicBool::new(false));
        let mut proxies = HashMap::new();
        let mut accepters = Vec::new();
        for src in 0..n {
            for (dst, &target) in upstream.iter().enumerate() {
                if src == dst {
                    continue;
                }
                let listener = TcpListener::bind("127.0.0.1:0")?;
                listener.set_nonblocking(true)?;
                proxies.insert((src, dst), listener.local_addr()?);
                let (schedule, conns, stop) = (schedule.clone(), conns.clone(), stop.clone());
                accepters.push(
                    thread::Builder::new()
                        .name(format!("chaos-{src}-{dst}"))
                        .spawn(move || {
                            accept_loop(listener, target, (src, dst), schedule, conns, stop)
                        })?,
                );
            }
        }
        Ok(ChaosNemesis {
            schedule,
            upstream,
            proxies,
            conns,
            stop,
            accepters,
        })
    }

    /// The decision source, for logs, counts, and heal state.
    pub fn schedule(&self) -> &Arc<ChaosSchedule> {
        &self.schedule
    }

    /// Peer-address vector for node `src`: every other entry routes
    /// through this nemesis; the node's own slot keeps its real address.
    pub fn peer_addrs_for(&self, src: usize) -> Vec<SocketAddr> {
        (0..self.upstream.len())
            .map(|dst| {
                if dst == src {
                    self.upstream[src]
                } else {
                    self.proxies[&(src, dst)]
                }
            })
            .collect()
    }

    /// Stops injecting faults and severs every live proxied connection
    /// once, forcing reconnect-and-resend from the acked windows so every
    /// frame swallowed by drops or partitions is redelivered. Call before
    /// draining; afterwards the proxies are transparent.
    pub fn heal(&self) {
        self.schedule.set_healed();
        let mut conns = self.conns.lock();
        for c in conns.drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
    }

    /// Tears the nemesis down: stops accept loops and severs everything.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut conns = self.conns.lock();
            for c in conns.drain(..) {
                let _ = c.shutdown(Shutdown::Both);
            }
        }
        for h in self.accepters.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosNemesis {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    link: (usize, usize),
    schedule: Arc<ChaosSchedule>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let client = match listener.accept() {
            Ok((c, _)) => c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => return,
        };
        // Upstream down (a crashed node): refuse by closing; the dialer's
        // backoff loop retries until the node is back.
        let up = match TcpStream::connect(target) {
            Ok(u) => u,
            Err(_) => continue,
        };
        let _ = client.set_nodelay(true);
        let _ = up.set_nodelay(true);
        let (c_rd, c_wr) = match (client.try_clone(), up.try_clone()) {
            (Ok(cr), Ok(ur)) => {
                let mut reg = conns.lock();
                reg.push(cr);
                reg.push(ur);
                match (client.try_clone(), up.try_clone()) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => continue,
                }
            }
            _ => continue,
        };
        let sched = schedule.clone();
        let _ = thread::Builder::new()
            .name(format!("chaos-fwd-{}-{}", link.0, link.1))
            .spawn(move || forward(client, up, link, sched));
        let _ = thread::Builder::new()
            .name(format!("chaos-rev-{}-{}", link.0, link.1))
            .spawn(move || backward(c_wr, c_rd));
    }
}

/// Reads one length-prefixed frame (prefix included in the result);
/// `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(rd: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let k = rd.read(&mut prefix[got..])?;
        if k == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection died inside a length prefix",
            ));
        }
        got += k;
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible frame length",
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    rd.read_exact(&mut frame[4..])?;
    Ok(Some(frame))
}

/// The faulting direction: parses frames off the dialer's stream and
/// applies one schedule decision per data frame.
fn forward(
    mut rd: TcpStream,
    mut wr: TcpStream,
    link: (usize, usize),
    schedule: Arc<ChaosSchedule>,
) {
    let protect = schedule.config().protect_tags.clone();
    // First frame of every connection is the handshake hello: faulting it
    // would wedge the dialer inside its blocking hello-ack read, so it
    // passes clean and uncounted.
    let mut first = true;
    let mut held: Option<Vec<u8>> = None;
    while let Ok(Some(frame)) = read_frame(&mut rd) {
        if first {
            first = false;
            if wr.write_all(&frame).is_err() {
                break;
            }
            continue;
        }
        // Protected tags (cut markers) keep their channel position:
        // forwarded immediately, before any held frame (the held frame
        // was sent pre-marker, so emitting it post-marker only delays an
        // in-flight message — the safe direction for cut consistency).
        if protect.contains(&frame[4]) {
            if wr.write_all(&frame).is_err() {
                break;
            }
            if let Some(h) = held.take() {
                if wr.write_all(&h).is_err() {
                    break;
                }
            }
            continue;
        }
        if schedule.is_healed() {
            if wr.write_all(&frame).is_err() {
                break;
            }
            if let Some(h) = held.take() {
                if wr.write_all(&h).is_err() {
                    break;
                }
            }
            continue;
        }
        let d = schedule.decide(link.0, link.1);
        let dead = match d.op {
            FaultOp::Deliver => wr.write_all(&frame).is_err(),
            FaultOp::Delay(ms) => {
                // A slow link, not a reorder: successors queue behind.
                thread::sleep(Duration::from_millis(ms));
                wr.write_all(&frame).is_err()
            }
            FaultOp::Duplicate => wr.write_all(&frame).is_err() || wr.write_all(&frame).is_err(),
            FaultOp::Reorder => {
                if held.is_none() {
                    held = Some(frame);
                    continue;
                }
                // Never hold two frames; deliver and let the held one out.
                wr.write_all(&frame).is_err()
            }
            FaultOp::Drop => continue,
            FaultOp::Cut => break,
            FaultOp::CutMid(raw) => {
                let cut = 1 + (raw as usize) % (frame.len() - 1);
                let _ = wr.write_all(&frame[..cut]);
                break;
            }
        };
        if dead {
            break;
        }
        if let Some(h) = held.take() {
            if wr.write_all(&h).is_err() {
                break;
            }
        }
    }
    // A held frame dies with the connection; it was never delivered, so
    // it is unacked upstream and the resume handshake resends it.
    let _ = rd.shutdown(Shutdown::Both);
    let _ = wr.shutdown(Shutdown::Both);
}

/// The clean direction: handshake replies and acks copied verbatim, so
/// the recovery path the faults lean on is never itself faulted.
fn backward(mut rd: TcpStream, mut wr: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match rd.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                if wr.write_all(&buf[..k]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = rd.shutdown(Shutdown::Both);
    let _ = wr.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, profile: FaultProfile) -> ChaosSchedule {
        let mut cfg = ChaosConfig::new(seed);
        cfg.profile = profile;
        ChaosSchedule::new(cfg, 4)
    }

    #[test]
    fn realized_log_matches_pure_replay() {
        let s = schedule(11, FaultProfile::heavy());
        for _ in 0..700 {
            s.decide(0, 1);
        }
        for _ in 0..300 {
            s.decide(2, 3);
        }
        let log = s.decision_log();
        for (link, realized) in log {
            let replayed =
                ChaosSchedule::replay_link(s.config(), 4, link.0, link.1, realized.len() as u64);
            assert_eq!(realized, replayed, "link {link:?}");
        }
    }

    #[test]
    fn two_schedules_same_seed_are_bit_identical() {
        let a = schedule(42, FaultProfile::heavy());
        let b = schedule(42, FaultProfile::heavy());
        for _ in 0..500 {
            a.decide(0, 1);
            b.decide(0, 1);
            a.decide(1, 0);
            b.decide(1, 0);
        }
        assert_eq!(a.decision_log(), b.decision_log());
        assert_eq!(a.fault_counts(), b.fault_counts());
    }

    #[test]
    fn partitions_isolate_one_node_per_window() {
        let mut cfg = ChaosConfig::new(9);
        cfg.profile = FaultProfile::off();
        cfg.partition_every = 100;
        cfg.partition_len = 25;
        let n = 4;
        for window in 0..8u64 {
            let iso = ChaosSchedule::isolated_node(&cfg, n, window);
            assert!(iso < n);
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let idx = window * 100 + 10; // inside the window
                    let touches = src == iso || dst == iso;
                    assert_eq!(
                        partition_active(&cfg, n, src, dst, idx),
                        touches,
                        "window {window} iso {iso} link {src}->{dst}"
                    );
                    let idx = window * 100 + 25; // just past it
                    assert!(!partition_active(&cfg, n, src, dst, idx));
                }
            }
        }
    }

    #[test]
    fn healed_schedule_stops_logging() {
        let s = schedule(3, FaultProfile::heavy());
        s.decide(0, 1);
        s.set_healed();
        assert!(s.is_healed());
        assert_eq!(s.decision_log()[0].1.len(), 1);
    }

    /// Minimal frame server: accepts one connection, reads frames,
    /// records payloads until EOF.
    fn frame_sink() -> (SocketAddr, std::sync::mpsc::Receiver<Vec<Vec<u8>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
        let addr = listener.local_addr().expect("sink addr");
        let (tx, rx) = std::sync::mpsc::channel();
        thread::spawn(move || {
            let (mut conn, _) = match listener.accept() {
                Ok(x) => x,
                Err(_) => return,
            };
            let mut frames = Vec::new();
            while let Ok(Some(f)) = read_frame(&mut conn) {
                frames.push(f[4..].to_vec());
            }
            let _ = tx.send(frames);
        });
        (addr, rx)
    }

    fn send_frame(conn: &mut TcpStream, payload: &[u8]) {
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(payload);
        conn.write_all(&buf).expect("send frame");
    }

    #[test]
    fn off_profile_proxy_is_transparent_and_ordered() {
        let (sink, rx) = frame_sink();
        let mut cfg = ChaosConfig::new(5);
        cfg.profile = FaultProfile::off();
        // upstream[1] is the sink; link 0 -> 1 is the proxied path.
        let nemesis = ChaosNemesis::launch(vec![sink, sink], cfg).expect("launch");
        let via = nemesis.peer_addrs_for(0)[1];
        let mut conn = TcpStream::connect(via).expect("dial proxy");
        send_frame(&mut conn, &[1, 0xaa]); // hello (uncounted)
        for i in 0..20u8 {
            send_frame(&mut conn, &[2, i]);
        }
        drop(conn);
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("sink frames");
        assert_eq!(got.len(), 21);
        for (i, f) in got[1..].iter().enumerate() {
            assert_eq!(f, &vec![2, i as u8]);
        }
        let counts = nemesis.schedule().fault_counts();
        assert_eq!(counts.delivered, 20);
        assert_eq!(counts.faulted(), 0);
    }

    #[test]
    fn duplicate_profile_doubles_every_data_frame() {
        let (sink, rx) = frame_sink();
        let mut cfg = ChaosConfig::new(5);
        cfg.profile = FaultProfile {
            duplicate_pm: 1000,
            ..FaultProfile::off()
        };
        let nemesis = ChaosNemesis::launch(vec![sink, sink], cfg).expect("launch");
        let via = nemesis.peer_addrs_for(0)[1];
        let mut conn = TcpStream::connect(via).expect("dial proxy");
        send_frame(&mut conn, &[1]); // hello
        for i in 0..10u8 {
            send_frame(&mut conn, &[2, i]);
        }
        drop(conn);
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("sink frames");
        assert_eq!(got.len(), 1 + 20, "hello once, every data frame twice");
        for i in 0..10usize {
            assert_eq!(got[1 + 2 * i], got[2 + 2 * i]);
        }
    }

    #[test]
    fn protected_tags_bypass_the_schedule() {
        let (sink, rx) = frame_sink();
        let mut cfg = ChaosConfig::new(5);
        cfg.profile = FaultProfile {
            drop_pm: 1000,
            ..FaultProfile::off()
        };
        cfg.protect_tags = vec![6];
        let nemesis = ChaosNemesis::launch(vec![sink, sink], cfg).expect("launch");
        let via = nemesis.peer_addrs_for(0)[1];
        let mut conn = TcpStream::connect(via).expect("dial proxy");
        send_frame(&mut conn, &[1]); // hello
        send_frame(&mut conn, &[2, 7]); // dropped
        send_frame(&mut conn, &[6, 9]); // marker: must pass
        send_frame(&mut conn, &[2, 8]); // dropped
        drop(conn);
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("sink frames");
        assert_eq!(got, vec![vec![1], vec![6, 9]]);
        assert_eq!(nemesis.schedule().fault_counts().dropped, 2);
    }

    #[test]
    fn heal_makes_proxies_transparent() {
        let (sink, rx) = frame_sink();
        let mut cfg = ChaosConfig::new(5);
        cfg.profile = FaultProfile {
            drop_pm: 1000,
            ..FaultProfile::off()
        };
        let nemesis = ChaosNemesis::launch(vec![sink, sink], cfg).expect("launch");
        let via = nemesis.peer_addrs_for(0)[1];
        {
            let mut conn = TcpStream::connect(via).expect("dial proxy");
            send_frame(&mut conn, &[1]);
            send_frame(&mut conn, &[2, 1]); // dropped
                                            // Heal severs this connection.
            thread::sleep(Duration::from_millis(50));
            nemesis.heal();
            thread::sleep(Duration::from_millis(50));
        }
        // The sink's single accepted connection is gone; a fresh dial now
        // passes everything (the sink test helper accepts once, so spin a
        // second sink through the same nemesis's other link direction is
        // overkill — assert via the schedule instead).
        let counts = nemesis.schedule().fault_counts();
        assert_eq!(counts.dropped, 1);
        assert!(nemesis.schedule().is_healed());
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("sink frames");
        assert_eq!(got, vec![vec![1]]);
    }
}
