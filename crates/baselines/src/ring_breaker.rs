//! Breaking the ring with virtual registers (Appendix D, Figure 13).
//!
//! The ring share graph forces every replica to track all `2n` edges. If
//! direct communication between replicas `0` and `n−1` is disallowed, their
//! shared register `x` can still be maintained by *relaying*: an update to
//! `x` is piggybacked on a chain of updates to the virtual registers along
//! the path `0 → 1 → … → n−1`. The share graph seen by the metadata layer
//! becomes a line, whose timestamp graphs contain only incident edges
//! (`2 N_i ≤ 4` counters instead of `2n`).
//!
//! The price — measured by experiment E12 — is `n−1` messages and `n−1`
//! network hops per `x`-update instead of one.
//!
//! Implementation notes: the logical register `x` is represented by two
//! private registers (`x₀` at replica `0`, `x₁` at replica `n−1`); relayed
//! hops are ordinary protocol updates on the line's edge registers carrying
//! the `x` value as payload, so all causal-ordering guarantees come from the
//! unmodified protocol. Causal order between an `x`-update and subsequent
//! updates issued at the origin is preserved because the relay hop is issued
//! at the origin like any other update.

use prcc_checker::{UpdateId, Verdict};
use prcc_clock::{EdgeProtocol, Protocol as _};
use prcc_core::{Cluster, ClusterStats, CoreError};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use prcc_net::{DeliveryPolicy, VirtualTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics specific to the relayed `x` register.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RingBreakerStats {
    /// Logical `x` updates issued at replica 0.
    pub x_updates: u64,
    /// Relay hop messages issued on their behalf (excluding the origin
    /// write).
    pub relay_hops: u64,
    /// Sum of end-to-end `x` latencies (origin write → applied at far end).
    pub total_x_latency: u64,
    /// Completed end-to-end deliveries.
    pub x_delivered: u64,
}

impl RingBreakerStats {
    /// Mean end-to-end latency of `x` updates in ticks.
    pub fn mean_x_latency(&self) -> f64 {
        if self.x_delivered == 0 {
            0.0
        } else {
            self.total_x_latency as f64 / self.x_delivered as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RelayState {
    payload: u64,
    origin_time: VirtualTime,
}

/// A ring of `n` replicas with the `0 ↔ n−1` link replaced by hop-by-hop
/// relaying over virtual registers.
pub struct RingBreaker {
    n: usize,
    cluster: Cluster<EdgeProtocol>,
    /// Hop update → relay continuation.
    relay: HashMap<UpdateId, RelayState>,
    x0: RegisterId,
    x1: RegisterId,
    stats: RingBreakerStats,
}

impl RingBreaker {
    /// Builds the broken ring.
    ///
    /// Registers `0..n−1` are the line's edge registers (register `p` shared
    /// by replicas `p` and `p+1`); `x₀ = n−1` and `x₁ = n` are the private
    /// halves of the logical `x`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, policy: Box<dyn DeliveryPolicy>) -> Self {
        assert!(n >= 3, "a ring needs at least 3 replicas");
        let mut assignments: Vec<Vec<RegisterId>> = vec![Vec::new(); n];
        for p in 0..n - 1 {
            assignments[p].push(RegisterId(p as u32));
            assignments[p + 1].push(RegisterId(p as u32));
        }
        let x0 = RegisterId((n - 1) as u32);
        let x1 = RegisterId(n as u32);
        assignments[0].push(x0);
        assignments[n - 1].push(x1);
        let g = ShareGraph::from_assignments(assignments).expect("non-empty");
        let cluster = Cluster::new(EdgeProtocol::new(g), policy);
        RingBreaker {
            n,
            cluster,
            relay: HashMap::new(),
            x0,
            x1,
            stats: RingBreakerStats::default(),
        }
    }

    /// The line share graph the metadata layer sees.
    pub fn share_graph(&self) -> &ShareGraph {
        self.cluster.protocol().share_graph()
    }

    /// Writes the logical register `x` at replica 0 and starts the relay.
    ///
    /// # Errors
    ///
    /// Propagates any cluster write error (none expected for valid state).
    pub fn write_x(&mut self, v: u64) -> Result<(), CoreError> {
        let origin_time = self.cluster.net().now();
        self.cluster.write(ReplicaId(0), self.x0, v)?;
        self.stats.x_updates += 1;
        // First hop: 0 → 1 on the edge register 0.
        let hop = self.cluster.write(ReplicaId(0), RegisterId(0), v)?;
        self.stats.relay_hops += 1;
        self.relay.insert(
            hop,
            RelayState {
                payload: v,
                origin_time,
            },
        );
        Ok(())
    }

    /// Ordinary (non-relayed) traffic: replica `p` writes its edge register
    /// `p`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotStored`]-style errors for invalid indices.
    pub fn write_local(&mut self, p: ReplicaId, v: u64) -> Result<UpdateId, CoreError> {
        let reg = RegisterId(p.index() as u32);
        self.cluster.write(p, reg, v)
    }

    /// Pumps the network until quiescent, performing relay continuations as
    /// hop updates get applied.
    pub fn run_to_quiescence(&mut self) {
        while let Some((dst, applied)) = self.cluster.step_detailed() {
            for u in applied {
                let Some(state) = self.relay.remove(&u.id) else {
                    continue;
                };
                let p = dst.index();
                if p == self.n - 1 {
                    // Final hop: materialize x at the far end.
                    self.cluster
                        .write(dst, self.x1, state.payload)
                        .expect("far end stores x1");
                    let now = self.cluster.net().now();
                    self.stats.x_delivered += 1;
                    self.stats.total_x_latency += now.since(state.origin_time);
                } else {
                    // Forward: p writes edge register p (shared with p+1).
                    let hop = self
                        .cluster
                        .write(dst, RegisterId(p as u32), state.payload)
                        .expect("interior replica stores its edge register");
                    self.stats.relay_hops += 1;
                    self.relay.insert(hop, state);
                }
            }
        }
    }

    /// Reads the logical `x` at the far end.
    pub fn read_x_far(&self) -> Option<u64> {
        self.cluster.replica(ReplicaId(self.n - 1)).peek(self.x1)
    }

    /// Reads the logical `x` at the origin.
    pub fn read_x_origin(&self) -> Option<u64> {
        self.cluster.replica(ReplicaId(0)).peek(self.x0)
    }

    /// Per-replica timestamp entry counts (the headline metadata saving).
    pub fn timestamp_entries(&self) -> Vec<usize> {
        use prcc_clock::{ClockState, Protocol};
        (0..self.n)
            .map(|p| self.cluster.protocol().new_clock(ReplicaId(p)).entries())
            .collect()
    }

    /// Relay statistics.
    pub fn stats(&self) -> &RingBreakerStats {
        &self.stats
    }

    /// Underlying cluster statistics.
    pub fn cluster_stats(&self) -> ClusterStats {
        self.cluster.stats()
    }

    /// Causal-consistency verdict of the underlying cluster.
    pub fn verdict(&self) -> Verdict {
        self.cluster.verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;
    use prcc_net::{FixedDelay, UniformDelay};

    #[test]
    fn metadata_graph_is_a_line() {
        let rb = RingBreaker::new(6, Box::new(FixedDelay(1)));
        assert!(rb.share_graph().is_forest());
        // Entries: ends track 2 edges, interiors 4 — vs 12 on the ring.
        let entries = rb.timestamp_entries();
        assert_eq!(entries[0], 2);
        assert_eq!(entries[3], 4);
        let ring_entries = prcc_graph::TimestampGraph::compute_all(&topologies::ring(6))
            .iter()
            .map(|t| t.len())
            .collect::<Vec<_>>();
        assert!(entries.iter().all(|&e| e < ring_entries[0]));
    }

    #[test]
    fn x_update_relays_end_to_end() {
        let mut rb = RingBreaker::new(5, Box::new(FixedDelay(10)));
        rb.write_x(42).unwrap();
        rb.run_to_quiescence();
        assert_eq!(rb.read_x_far(), Some(42));
        assert_eq!(rb.read_x_origin(), Some(42));
        let s = rb.stats();
        assert_eq!(s.x_updates, 1);
        assert_eq!(s.relay_hops, 4, "n−1 hops");
        assert_eq!(s.x_delivered, 1);
        // 4 hops × 10 ticks each.
        assert_eq!(s.mean_x_latency(), 40.0);
        assert!(rb.verdict().is_consistent());
    }

    #[test]
    fn multiple_x_updates_arrive_in_order() {
        let mut rb = RingBreaker::new(4, Box::new(UniformDelay::new(17, 1, 30)));
        for v in 1..=5 {
            rb.write_x(v).unwrap();
        }
        rb.run_to_quiescence();
        assert_eq!(rb.read_x_far(), Some(5), "last write wins in causal order");
        assert_eq!(rb.stats().x_delivered, 5);
        assert!(rb.verdict().is_consistent());
    }

    #[test]
    fn mixed_traffic_stays_consistent() {
        let mut rb = RingBreaker::new(5, Box::new(UniformDelay::new(23, 1, 40)));
        for round in 0..10u64 {
            rb.write_x(round).unwrap();
            rb.write_local(ReplicaId((round % 4) as usize), round)
                .unwrap();
        }
        rb.run_to_quiescence();
        assert!(rb.verdict().is_consistent());
        assert_eq!(rb.stats().x_delivered, 10);
    }
}
