//! Dummy registers (Appendix D): metadata-only register copies that reshape
//! the share graph.
//!
//! A dummy copy of `x` at replica `j` means `j` receives every update to
//! `x` (metadata only — no value, no client access) and times-stamps as if
//! it stored `x`. Adding dummies changes the share graph seen by the
//! *metadata* layer while real storage is unchanged; chosen judiciously this
//! reduces timestamp size at the cost of extra messages and false
//! dependencies. The extreme point is full-replication emulation, where the
//! metadata share graph is a clique and compressed timestamps shrink to the
//! traditional length-`R` vector.

use prcc_clock::{EdgeProtocol, Protocol};
use prcc_graph::{RegisterId, ReplicaId, ShareGraph};
use std::fmt;

/// The paper's algorithm running on a dummy-augmented share graph: metadata
/// follows the augmented graph, values follow the real one.
pub struct DummyProtocol {
    real: ShareGraph,
    inner: EdgeProtocol,
    name: String,
}

impl DummyProtocol {
    /// Adds the given dummy copies: `(replica, register)` pairs the replica
    /// will track but not store.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an out-of-range replica or register.
    pub fn with_dummies(real: ShareGraph, dummies: &[(ReplicaId, RegisterId)]) -> Self {
        let mut assignments: Vec<Vec<RegisterId>> = real
            .replicas()
            .map(|i| real.registers_of(i).iter().collect())
            .collect();
        for &(r, x) in dummies {
            assert!(r.index() < real.num_replicas(), "replica {r} out of range");
            assert!(
                x.index() < real.num_registers(),
                "register {x} out of range"
            );
            if !assignments[r.index()].contains(&x) {
                assignments[r.index()].push(x);
            }
        }
        let augmented = ShareGraph::from_assignments(assignments).expect("non-empty");
        DummyProtocol {
            real,
            inner: EdgeProtocol::new(augmented),
            name: format!("dummies(+{})", dummies.len()),
        }
    }

    /// Full-replication emulation: a dummy copy of every register at every
    /// replica. The metadata share graph becomes a full-replication clique,
    /// so after compression timestamps have vector-clock overhead — at the
    /// price of broadcasting every update's metadata.
    pub fn full_emulation(real: ShareGraph) -> Self {
        let all: Vec<(ReplicaId, RegisterId)> = real
            .replicas()
            .flat_map(|i| real.registers().map(move |x| (i, x)))
            .filter(|&(i, x)| !real.stores(i, x))
            .collect();
        let mut p = Self::with_dummies(real, &all);
        p.name = "full-emulation".into();
        p
    }

    /// The metadata (augmented) share graph.
    pub fn metadata_graph(&self) -> &ShareGraph {
        self.inner.share_graph()
    }
}

impl fmt::Debug for DummyProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DummyProtocol")
            .field("name", &self.name)
            .field("replicas", &self.real.num_replicas())
            .finish()
    }
}

impl Protocol for DummyProtocol {
    type Clock = <EdgeProtocol as Protocol>::Clock;

    fn name(&self) -> &str {
        &self.name
    }

    /// The *real* share graph: storage, oracle checks and client routing
    /// follow actual placement.
    fn share_graph(&self) -> &ShareGraph {
        &self.real
    }

    fn new_clock(&self, i: ReplicaId) -> Self::Clock {
        self.inner.new_clock(i)
    }

    fn advance(&self, i: ReplicaId, local: &mut Self::Clock, x: RegisterId) {
        self.inner.advance(i, local, x)
    }

    fn deliverable(
        &self,
        i: ReplicaId,
        local: &Self::Clock,
        k: ReplicaId,
        attached: &Self::Clock,
        x: RegisterId,
    ) -> bool {
        self.inner.deliverable(i, local, k, attached, x)
    }

    fn merge(&self, i: ReplicaId, local: &mut Self::Clock, k: ReplicaId, attached: &Self::Clock) {
        self.inner.merge(i, local, k, attached)
    }

    fn recipients(&self, i: ReplicaId, x: RegisterId) -> Vec<ReplicaId> {
        // Metadata goes to every (real or dummy) holder.
        self.inner.share_graph().recipients(i, x)
    }

    fn stores_value(&self, k: ReplicaId, x: RegisterId) -> bool {
        self.real.stores(k, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_clock::ClockState;
    use prcc_core::Cluster;
    use prcc_graph::topologies;
    use prcc_net::{FixedDelay, UniformDelay};

    #[test]
    fn full_emulation_metadata_graph_is_clique() {
        let g = topologies::line(4);
        let p = DummyProtocol::full_emulation(g.clone());
        assert!(p.metadata_graph().is_full_replication());
        assert_eq!(p.share_graph(), &g, "real graph unchanged");
    }

    #[test]
    fn full_emulation_broadcasts_and_stays_consistent() {
        let g = topologies::ring(4);
        let mut c = Cluster::new(
            DummyProtocol::full_emulation(g.clone()),
            Box::new(UniformDelay::new(3, 1, 25)),
        );
        for round in 0..24u64 {
            let i = ReplicaId((round % 4) as usize);
            let regs: Vec<RegisterId> = g.registers_of(i).iter().collect();
            c.write(i, regs[(round % 2) as usize], round).unwrap();
        }
        c.run_to_quiescence();
        assert!(c.verdict().is_consistent());
        let s = c.stats();
        // Every update reaches all 3 peers; real holders are only 1 per
        // register on the ring.
        assert_eq!(s.messages_per_update(), 3.0);
        assert!(s.metadata_only_messages > 0);
    }

    #[test]
    fn selective_dummy_adds_an_edge() {
        // Figure 3's path 1–2–3–4: a dummy copy of z (reg 2) at replica 1
        // creates metadata edges 1↔3 and 1↔4.
        let g = topologies::figure3();
        let p = DummyProtocol::with_dummies(g, &[(ReplicaId(0), RegisterId(2))]);
        assert!(p.metadata_graph().are_adjacent(ReplicaId(0), ReplicaId(2)));
        assert!(p.metadata_graph().are_adjacent(ReplicaId(0), ReplicaId(3)));
        assert!(!p.share_graph().are_adjacent(ReplicaId(0), ReplicaId(2)));
        // Updates to z now also go to replica 0 (metadata only).
        let r = p.recipients(ReplicaId(2), RegisterId(2));
        assert!(r.contains(&ReplicaId(0)));
        assert!(!p.stores_value(ReplicaId(0), RegisterId(2)));
    }

    #[test]
    fn dummy_cluster_never_materializes_dummy_values() {
        let g = topologies::figure3();
        let mut c = Cluster::new(
            DummyProtocol::with_dummies(g, &[(ReplicaId(0), RegisterId(2))]),
            Box::new(FixedDelay(2)),
        );
        c.write(ReplicaId(2), RegisterId(2), 77).unwrap();
        c.run_to_quiescence();
        assert!(c.verdict().is_consistent());
        assert!(c.replica(ReplicaId(0)).peek(RegisterId(2)).is_none());
        assert_eq!(c.read(ReplicaId(3), RegisterId(2)).unwrap(), Some(77));
    }

    #[test]
    fn full_emulation_timestamps_have_clique_structure() {
        let g = topologies::ring(5);
        let p = DummyProtocol::full_emulation(g.clone());
        let clock = p.new_clock(ReplicaId(0));
        // Metadata clique: R(R−1) = 20 raw entries (vs 10 for the ring) —
        // but rank-compressible to R = 5, which E11 reports.
        assert_eq!(clock.entries(), 20);
        let report = prcc_graph::analysis::compression_report(
            p.metadata_graph(),
            &prcc_graph::TimestampGraph::compute(p.metadata_graph(), ReplicaId(0)),
        );
        assert_eq!(report.rank_entries, 5);
    }
}
