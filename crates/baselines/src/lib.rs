//! Baseline protocols and the paper's practical optimizations (Section 5,
//! Appendix D).
//!
//! Everything here reuses the generic replica/cluster machinery of
//! `prcc-core` with a different metadata policy, so comparisons against the
//! paper's algorithm are apples-to-apples:
//!
//! * [`edge_sets`] — alternative tracked-edge sets plugged into
//!   [`prcc_clock::EdgeProtocol`]: all share edges (naive
//!   over-approximation), Hélary–Milani hoop-based sets (original and
//!   modified definitions — the paper's counterexamples show the former
//!   over-tracks and the latter is *unsafe*), bounded-loop sets
//!   ("sacrificing causality"), and single-edge deletions (Theorem 8
//!   necessity demos).
//! * [`DummyProtocol`] — dummy registers (Appendix D): metadata-only copies
//!   that reshape the share graph, up to full-replication emulation.
//! * [`RingBreaker`] — restricted communication via virtual registers
//!   (Appendix D, Figure 13): the ring share graph with one link removed
//!   and updates relayed hop-by-hop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dummy;
pub mod edge_sets;
mod ring_breaker;

pub use dummy::DummyProtocol;
pub use ring_breaker::{RingBreaker, RingBreakerStats};
