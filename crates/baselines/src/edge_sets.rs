//! Alternative tracked-edge sets for [`EdgeProtocol`].

use prcc_clock::EdgeProtocol;
use prcc_graph::loops::find_loop_bounded;
use prcc_graph::{hoops, Edge, ReplicaId, ShareGraph, TimestampGraph};

/// Every replica tracks every directed share edge — the naive baseline a
/// system without the `(i, e_jk)`-loop analysis would use. Safe (it is a
/// superset of every `E_i`) but `|E|` counters per replica.
pub fn all_edges(g: &ShareGraph) -> Vec<TimestampGraph> {
    g.replicas()
        .map(|i| TimestampGraph::from_edges(i, g.directed_edges()))
        .collect()
}

/// Edge sets induced by Hélary & Milani's criterion: replica `i` tracks a
/// non-incident edge `e_jk` iff some register of `X_jk` is one `i` "has to
/// transmit information about" — i.e. `i` stores it or lies on a minimal
/// `x`-hoop. `modified` selects the modified minimal-hoop definition
/// (Definition 20); the original is used otherwise.
///
/// With the original definition this *over*-tracks relative to the
/// timestamp graphs (counterexample 1); with the modified definition it can
/// *under*-track and violate causal consistency (counterexample 2) — see
/// the crate tests for the executable demonstrations.
pub fn hoop_based(g: &ShareGraph, modified: bool) -> Vec<TimestampGraph> {
    g.replicas()
        .map(|i| {
            let tracked = if modified {
                hoops::tracked_registers_modified(g, i)
            } else {
                hoops::tracked_registers_original(g, i)
            };
            let edges = g
                .directed_edges()
                .filter(|e| e.touches(i) || !g.shared_on(*e).is_disjoint(&tracked));
            TimestampGraph::from_edges(i, edges)
        })
        .collect()
}

/// Bounded-loop edge sets (Appendix D "sacrificing causality"): replica `i`
/// tracks incident edges plus `e_jk` only when an `(i, e_jk)`-loop with at
/// most `l + 1` edges exists.
///
/// Safe when one-hop messages always beat `l`-hop dependency chains (loose
/// synchrony, [`prcc_net::UniformDelay::loosely_synchronous`]); unsafe in
/// general — experiment E13 measures the violation rate.
pub fn bounded_loops(g: &ShareGraph, l: usize) -> Vec<TimestampGraph> {
    g.replicas()
        .map(|i| {
            let mut edges: Vec<Edge> = Vec::new();
            for &n in g.neighbors(i) {
                edges.push(Edge::new(i, n));
                edges.push(Edge::new(n, i));
            }
            for e in g.directed_edges() {
                if !e.touches(i) && find_loop_bounded(g, i, e, l + 1).is_some() {
                    edges.push(e);
                }
            }
            TimestampGraph::from_edges(i, edges)
        })
        .collect()
}

/// The exact timestamp graphs with one edge removed from one replica's set —
/// the "oblivious to updates on `e`" configuration whose impossibility
/// Theorem 8 proves. Used by the necessity experiments (E07) to exhibit
/// violations.
pub fn drop_edge(g: &ShareGraph, victim: ReplicaId, e: Edge) -> Vec<TimestampGraph> {
    TimestampGraph::compute_all(g)
        .into_iter()
        .map(|tsg| {
            if tsg.replica() == victim {
                TimestampGraph::from_edges(victim, tsg.edges().filter(|&x| x != e))
            } else {
                tsg
            }
        })
        .collect()
}

/// Convenience: the paper's protocol with [`all_edges`] tracking.
pub fn all_edges_protocol(g: &ShareGraph) -> EdgeProtocol {
    EdgeProtocol::with_edge_sets(g.clone(), all_edges(g), "all-edges")
}

/// Convenience: the paper's protocol with [`hoop_based`] tracking.
pub fn hoop_protocol(g: &ShareGraph, modified: bool) -> EdgeProtocol {
    let name = if modified {
        "hoop-modified"
    } else {
        "hoop-original"
    };
    EdgeProtocol::with_edge_sets(g.clone(), hoop_based(g, modified), name)
}

/// Convenience: the paper's protocol with [`bounded_loops`] tracking.
pub fn bounded_loop_protocol(g: &ShareGraph, l: usize) -> EdgeProtocol {
    EdgeProtocol::with_edge_sets(
        g.clone(),
        bounded_loops(g, l),
        format!("bounded-loops(l={l})"),
    )
}

/// Convenience: the paper's protocol with one edge dropped at one replica.
pub fn drop_edge_protocol(g: &ShareGraph, victim: ReplicaId, e: Edge) -> EdgeProtocol {
    EdgeProtocol::with_edge_sets(
        g.clone(),
        drop_edge(g, victim, e),
        format!("drop({victim},{e})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_graph::topologies;

    #[test]
    fn all_edges_is_superset_of_timestamp_graphs() {
        let g = topologies::figure5();
        let exact = TimestampGraph::compute_all(&g);
        let naive = all_edges(&g);
        for (e, n) in exact.iter().zip(&naive) {
            for edge in e.edges() {
                assert!(n.contains(edge));
            }
            assert!(n.len() >= e.len());
        }
    }

    #[test]
    fn hoop_original_overtracks_on_counterexample1() {
        let (g, r) = topologies::counterexample1();
        let exact = TimestampGraph::compute_all(&g);
        let hm = hoop_based(&g, false);
        let i = r.i.index();
        // HM forces i to track the j–k edge; the exact graph does not.
        assert!(hm[i].contains(Edge::new(r.j, r.k)));
        assert!(!exact[i].contains(Edge::new(r.j, r.k)));
        assert!(hm[i].len() > exact[i].len());
    }

    #[test]
    fn hoop_modified_undertracks_on_counterexample2() {
        let (g, r) = topologies::counterexample2();
        let exact = TimestampGraph::compute_all(&g);
        let hm = hoop_based(&g, true);
        let i = r.i.index();
        assert!(
            exact[i].contains(Edge::new(r.k, r.j)),
            "Theorem 8 requires e_kj"
        );
        assert!(
            !hm[i].contains(Edge::new(r.k, r.j)),
            "modified hoops drop it — the unsafe configuration"
        );
    }

    #[test]
    fn bounded_loops_monotone_in_l() {
        let g = topologies::ring(6);
        let l2 = bounded_loops(&g, 2);
        let l5 = bounded_loops(&g, 5);
        let l6 = bounded_loops(&g, 6);
        for i in 0..6 {
            assert!(l2[i].len() <= l5[i].len());
            assert!(l5[i].len() <= l6[i].len());
            // The ring's only loop has 6 edges → l = 5 already covers it
            // (l + 1 = 6), while l = 2 tracks only incident edges.
            assert_eq!(l2[i].len(), 4);
            assert_eq!(l5[i].len(), 12);
        }
        // With l covering the whole ring, the sets equal the exact graphs.
        let exact = TimestampGraph::compute_all(&g);
        assert_eq!(l6, exact);
    }

    #[test]
    fn drop_edge_removes_exactly_one() {
        let g = topologies::figure5();
        let e = Edge::new(ReplicaId(3), ReplicaId(2));
        let dropped = drop_edge(&g, ReplicaId(0), e);
        let exact = TimestampGraph::compute_all(&g);
        assert_eq!(dropped[0].len() + 1, exact[0].len());
        assert!(!dropped[0].contains(e));
        for i in 1..4 {
            assert_eq!(dropped[i], exact[i]);
        }
    }

    #[test]
    fn protocol_constructors_name_themselves() {
        use prcc_clock::Protocol as _;
        let g = topologies::ring(4);
        assert_eq!(all_edges_protocol(&g).name(), "all-edges");
        assert_eq!(hoop_protocol(&g, false).name(), "hoop-original");
        assert_eq!(hoop_protocol(&g, true).name(), "hoop-modified");
        assert!(bounded_loop_protocol(&g, 3).name().contains("l=3"));
        let e = Edge::new(ReplicaId(1), ReplicaId(2));
        assert!(drop_edge_protocol(&g, ReplicaId(0), e)
            .name()
            .contains("drop"));
    }
}
