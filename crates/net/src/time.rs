//! Virtual time for the discrete-event simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// A point in simulated time, in abstract ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// The simulation epoch.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference between two times.
    pub fn since(self, earlier: VirtualTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, delta: u64) -> VirtualTime {
        VirtualTime(self.0 + delta)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VirtualTime::ZERO + 5;
        assert_eq!(t.ticks(), 5);
        assert_eq!((t + 3).since(t), 3);
        assert_eq!(t.since(t + 3), 0, "saturating");
        assert!(t < t + 1);
        assert_eq!(t.to_string(), "t5");
    }
}
