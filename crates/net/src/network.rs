//! The in-flight message queue.

use crate::policy::DeliveryPolicy;
use crate::stats::NetStats;
use crate::{NodeIndex, VirtualTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Unique, monotonically increasing identifier of a sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

/// A message handed back by [`Network::deliver_next`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Message id assigned at send time.
    pub id: MessageId,
    /// Sender node.
    pub src: NodeIndex,
    /// Receiver node.
    pub dst: NodeIndex,
    /// Virtual time of delivery.
    pub time: VirtualTime,
    /// The payload.
    pub msg: M,
}

struct Envelope<M> {
    id: MessageId,
    src: NodeIndex,
    dst: NodeIndex,
    bytes: usize,
    msg: M,
}

/// A reliable point-to-point network of `n` nodes with pluggable delays and
/// per-link hold-back.
///
/// Guarantees:
///
/// * **Reliable**: every sent message is eventually delivered (held-back
///   messages once released).
/// * **Deterministic**: delivery order depends only on the policy (and its
///   seed) and the send sequence; ties in delivery time break by send order.
/// * **Non-FIFO** unless the policy is [`crate::FixedDelay`].
///
/// ```
/// use prcc_net::{FixedDelay, Network};
/// let mut net: Network<&str> = Network::new(2, Box::new(FixedDelay(5)));
/// net.send(0, 1, 16, "hello");
/// let d = net.deliver_next().expect("one message in flight");
/// assert_eq!((d.src, d.dst, d.msg), (0, 1, "hello"));
/// assert!(net.is_quiescent());
/// ```
pub struct Network<M> {
    now: VirtualTime,
    next_id: u64,
    queue: BinaryHeap<Reverse<(VirtualTime, u64)>>,
    in_flight: HashMap<u64, Envelope<M>>,
    held: HashMap<(NodeIndex, NodeIndex), Vec<Envelope<M>>>,
    held_links: Vec<(NodeIndex, NodeIndex)>,
    policy: Box<dyn DeliveryPolicy>,
    stats: NetStats,
    num_nodes: usize,
    /// When `k > 0`, every `k`-th send also delivers a duplicate copy —
    /// fault injection for at-least-once channels.
    duplicate_every: u64,
    sends: u64,
}

impl<M> Network<M> {
    /// Creates a network of `num_nodes` nodes with the given delay policy.
    pub fn new(num_nodes: usize, policy: Box<dyn DeliveryPolicy>) -> Self {
        Network {
            now: VirtualTime::ZERO,
            next_id: 0,
            queue: BinaryHeap::new(),
            in_flight: HashMap::new(),
            held: HashMap::new(),
            held_links: Vec::new(),
            policy,
            stats: NetStats::new(num_nodes),
            num_nodes,
            duplicate_every: 0,
            sends: 0,
        }
    }

    /// Enables duplicate injection: every `k`-th sent message is delivered
    /// twice (at independent times). `0` disables. Exercises the receivers'
    /// at-least-once tolerance; the paper assumes exactly-once channels, so
    /// replicas must deduplicate to keep their predicates live.
    pub fn set_duplicate_every(&mut self, k: u64) {
        self.duplicate_every = k;
    }

    /// Number of attached nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Current virtual time (time of the last delivery).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    fn send_one(&mut self, src: NodeIndex, dst: NodeIndex, bytes: usize, msg: M) -> MessageId {
        let id = MessageId(self.next_id);
        self.next_id += 1;
        self.stats.record_send(src, dst, bytes);
        let env = Envelope {
            id,
            src,
            dst,
            bytes,
            msg,
        };
        if self.held_links.contains(&(src, dst)) {
            self.held.entry((src, dst)).or_default().push(env);
        } else {
            self.schedule(env);
        }
        id
    }

    fn schedule(&mut self, env: Envelope<M>) {
        let delay = self.policy.delay(env.src, env.dst, self.now).max(1);
        let at = self.now + delay;
        self.queue.push(Reverse((at, env.id.0)));
        self.in_flight.insert(env.id.0, env);
    }

    /// Pops the earliest scheduled delivery, advancing virtual time.
    ///
    /// Held-back messages are not candidates until released. Returns `None`
    /// when nothing is in flight.
    pub fn deliver_next(&mut self) -> Option<Delivery<M>> {
        let Reverse((at, id)) = self.queue.pop()?;
        let env = self
            .in_flight
            .remove(&id)
            .expect("queued message must be in flight");
        self.now = self.now.max(at);
        self.stats.record_delivery(env.src, env.dst, env.bytes, at);
        Some(Delivery {
            id: env.id,
            src: env.src,
            dst: env.dst,
            time: at,
            msg: env.msg,
        })
    }

    /// Starts holding back all *future* messages on the directed link
    /// `src → dst` (the proof executions' "delayed in the communication
    /// channels").
    pub fn hold_link(&mut self, src: NodeIndex, dst: NodeIndex) {
        if !self.held_links.contains(&(src, dst)) {
            self.held_links.push((src, dst));
        }
    }

    /// Stops holding the link and schedules everything accumulated on it.
    pub fn release_link(&mut self, src: NodeIndex, dst: NodeIndex) {
        self.held_links.retain(|&l| l != (src, dst));
        if let Some(envs) = self.held.remove(&(src, dst)) {
            for env in envs {
                self.schedule(env);
            }
        }
    }

    /// Releases every held link.
    pub fn release_all(&mut self) {
        let links: Vec<_> = self.held.keys().copied().collect();
        for (s, d) in links {
            self.release_link(s, d);
        }
        self.held_links.clear();
    }

    /// Number of messages currently scheduled (excluding held).
    pub fn scheduled_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of messages currently held back.
    pub fn held_count(&self) -> usize {
        self.held.values().map(Vec::len).sum()
    }

    /// True when no message is scheduled *or* held.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.held.values().all(Vec::is_empty)
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }
}

impl<M: Clone> Network<M> {
    /// Sends `msg` from `src` to `dst`; `bytes` is its wire size for
    /// accounting. With duplicate injection enabled, periodically schedules
    /// a second copy.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of range.
    pub fn send(&mut self, src: NodeIndex, dst: NodeIndex, bytes: usize, msg: M) -> MessageId {
        assert!(src != dst, "no self messages");
        assert!(
            src < self.num_nodes && dst < self.num_nodes,
            "node out of range"
        );
        self.sends += 1;
        if self.duplicate_every > 0 && self.sends.is_multiple_of(self.duplicate_every) {
            self.send_one(src, dst, bytes, msg.clone());
        }
        self.send_one(src, dst, bytes, msg)
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.num_nodes)
            .field("now", &self.now)
            .field("scheduled", &self.queue.len())
            .field("held", &self.held_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedDelay, UniformDelay};

    fn fifo_net() -> Network<&'static str> {
        Network::new(3, Box::new(FixedDelay(5)))
    }

    #[test]
    fn fixed_delay_preserves_send_order() {
        let mut net = fifo_net();
        net.send(0, 1, 10, "a");
        net.send(0, 1, 10, "b");
        net.send(0, 1, 10, "c");
        let order: Vec<_> = std::iter::from_fn(|| net.deliver_next())
            .map(|d| d.msg)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(net.is_quiescent());
    }

    #[test]
    fn uniform_delay_can_reorder() {
        // With a wide delay range, some pair of consecutive messages gets
        // swapped for this seed.
        let mut net: Network<u32> = Network::new(2, Box::new(UniformDelay::new(3, 1, 100)));
        for m in 0..20 {
            net.send(0, 1, 1, m);
        }
        let order: Vec<u32> = std::iter::from_fn(|| net.deliver_next())
            .map(|d| d.msg)
            .collect();
        assert_eq!(order.len(), 20);
        assert!(
            order.windows(2).any(|w| w[0] > w[1]),
            "expected at least one reordering, got {order:?}"
        );
    }

    #[test]
    fn time_advances_monotonically() {
        let mut net: Network<u32> = Network::new(2, Box::new(UniformDelay::new(9, 1, 50)));
        for m in 0..10 {
            net.send(0, 1, 1, m);
        }
        let mut last = VirtualTime::ZERO;
        while let Some(d) = net.deliver_next() {
            assert!(d.time >= last);
            last = d.time;
        }
        assert_eq!(net.now(), last);
    }

    #[test]
    fn hold_and_release() {
        let mut net = fifo_net();
        net.hold_link(0, 1);
        net.send(0, 1, 1, "held");
        net.send(0, 2, 1, "direct");
        assert_eq!(net.held_count(), 1);
        assert!(!net.is_quiescent());
        let first = net.deliver_next().unwrap();
        assert_eq!(first.msg, "direct");
        assert!(
            net.deliver_next().is_none(),
            "held message must not deliver"
        );
        net.release_link(0, 1);
        let second = net.deliver_next().unwrap();
        assert_eq!(second.msg, "held");
        assert!(net.is_quiescent());
    }

    #[test]
    fn release_all_flushes_everything() {
        let mut net = fifo_net();
        net.hold_link(0, 1);
        net.hold_link(1, 2);
        net.send(0, 1, 1, "a");
        net.send(1, 2, 1, "b");
        assert_eq!(net.held_count(), 2);
        net.release_all();
        assert_eq!(net.held_count(), 0);
        assert_eq!(net.scheduled_count(), 2);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let mut net = fifo_net();
        net.send(0, 1, 100, "a");
        net.send(1, 2, 50, "b");
        while net.deliver_next().is_some() {}
        assert_eq!(net.stats().messages_sent(), 2);
        assert_eq!(net.stats().bytes_sent(), 150);
        assert_eq!(net.stats().messages_delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "no self messages")]
    fn self_send_panics() {
        let mut net = fifo_net();
        net.send(1, 1, 1, "x");
    }

    #[test]
    fn message_ids_are_unique_and_ordered() {
        let mut net = fifo_net();
        let a = net.send(0, 1, 1, "a");
        let b = net.send(0, 2, 1, "b");
        assert!(a < b);
    }
}
