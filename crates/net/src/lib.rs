//! Deterministic discrete-event network simulation.
//!
//! The paper's system model (Section 2) is an asynchronous message-passing
//! system with reliable, **not necessarily FIFO**, point-to-point channels
//! between replicas. Its impossibility proofs (Theorem 8, Lemma 14) build
//! adversarial executions by delaying and reordering specific messages.
//!
//! This crate provides that substrate as a seeded, fully deterministic
//! simulator:
//!
//! * [`Network`] — an event queue of in-flight messages with virtual time;
//!   `send` schedules a delivery according to a [`DeliveryPolicy`],
//!   `deliver_next` pops the earliest one. Determinism: ties broken by send
//!   sequence number, randomness only from the caller-provided seeded RNG.
//! * [`DeliveryPolicy`] — pluggable delay models: [`UniformDelay`]
//!   (non-FIFO, the paper's default model), [`FixedDelay`] (FIFO),
//!   [`PerLinkDelay`] (heterogeneous links, used by the ring-breaking
//!   experiment E12).
//! * Link *hold-back* controls ([`Network::hold_link`] /
//!   [`Network::release_link`]) — the mechanism the proof executions use to
//!   "not deliver these update messages until a later time".
//! * [`NetStats`] — message and byte accounting for metadata-overhead
//!   experiments.
//! * [`chaos`] — seeded per-link fault schedules ([`LinkFaultStream`],
//!   [`FaultProfile`]) shared between the simulator (via [`ChaosPolicy`])
//!   and the TCP nemesis proxy in `prcc-chaos`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod network;
mod policy;
mod stats;
mod time;

pub use chaos::{ChaosPolicy, FaultOp, FaultProfile, LinkFaultStream};
pub use network::{Delivery, MessageId, Network};
pub use policy::{DeliveryPolicy, FixedDelay, PerLinkDelay, UniformDelay};
pub use stats::NetStats;
pub use time::VirtualTime;

/// Index of a node (replica or client) attached to the network.
///
/// The network is agnostic to what a node is; the core crate maps replica
/// ids and (in the client-server architecture) client ids onto node
/// indices.
pub type NodeIndex = usize;
