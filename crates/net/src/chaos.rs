//! Seeded per-link fault streams — the reusable half of the chaos nemesis.
//!
//! The simulator's [`DeliveryPolicy`] implementations randomize *delay*;
//! a real nemesis also reorders, duplicates, drops, and severs. This
//! module factors the *decision* out of both worlds: a
//! [`LinkFaultStream`] is a pure function from `(seed, src, dst, index)`
//! to a [`FaultOp`], so the TCP proxy in `prcc-chaos` and the simulator
//! (via [`ChaosPolicy`]) draw from the identical schedule. Determinism is
//! the contract: two streams built from the same arguments yield the
//! same ops in the same order, which is what makes a failing chaos run
//! replayable from nothing but its seed.

use crate::{DeliveryPolicy, NodeIndex, VirtualTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// One scheduled decision for one in-order message (frame) on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Pass the frame through untouched.
    Deliver,
    /// Hold the frame for the given number of milliseconds, then deliver.
    /// Later frames on the link queue behind it (a slow link, not a
    /// reorder).
    Delay(u64),
    /// Hold this frame back and emit it after the next frame on the link
    /// (a one-step reorder; the paper's non-FIFO channel in miniature).
    Reorder,
    /// Deliver the frame twice back to back.
    Duplicate,
    /// Silently discard the frame. Recovery relies on the acked resend
    /// window, so a drop heals at the next reconnect.
    Drop,
    /// Sever the connection at a frame boundary. The dialer's backoff
    /// loop re-establishes it and resends from the acked window.
    Cut,
    /// Sever the connection *inside* the frame: forward `1 + raw %
    /// (len-1)` bytes of the encoded frame, then cut. Exercises the
    /// length-prefix truncation paths of the reader.
    CutMid(u32),
}

/// Per-mille rates for each fault class on a link; the remainder of the
/// thousand delivers clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// ‰ of frames delayed.
    pub delay_pm: u32,
    /// Upper bound (inclusive, ms) for drawn delays; lower bound is 1.
    pub delay_max_ms: u64,
    /// ‰ of frames held back one slot.
    pub reorder_pm: u32,
    /// ‰ of frames delivered twice.
    pub duplicate_pm: u32,
    /// ‰ of frames silently dropped.
    pub drop_pm: u32,
    /// ‰ of frames that sever the link at a frame boundary.
    pub cut_pm: u32,
    /// ‰ of frames that sever the link mid-frame.
    pub cut_mid_pm: u32,
}

impl FaultProfile {
    /// No faults at all: every draw is [`FaultOp::Deliver`].
    pub const fn off() -> Self {
        FaultProfile {
            delay_pm: 0,
            delay_max_ms: 0,
            reorder_pm: 0,
            duplicate_pm: 0,
            drop_pm: 0,
            cut_pm: 0,
            cut_mid_pm: 0,
        }
    }

    /// Gentle background noise: mostly clean, occasional small delays,
    /// reorders and duplicates, rare drops, very rare cuts.
    pub const fn light() -> Self {
        FaultProfile {
            delay_pm: 40,
            delay_max_ms: 3,
            reorder_pm: 30,
            duplicate_pm: 30,
            drop_pm: 10,
            cut_pm: 2,
            cut_mid_pm: 2,
        }
    }

    /// Hostile link: heavy reordering and duplication, frequent drops,
    /// regular severs including mid-frame.
    pub const fn heavy() -> Self {
        FaultProfile {
            delay_pm: 60,
            delay_max_ms: 8,
            reorder_pm: 80,
            duplicate_pm: 80,
            drop_pm: 40,
            cut_pm: 8,
            cut_mid_pm: 8,
        }
    }

    fn fault_pm(&self) -> u32 {
        self.delay_pm
            + self.reorder_pm
            + self.duplicate_pm
            + self.drop_pm
            + self.cut_pm
            + self.cut_mid_pm
    }
}

/// 64-bit mix (splitmix64 finalizer) used to derive independent per-link
/// seeds from one schedule seed. Identical links must not share a
/// stream, or faults would correlate across the topology. Public because
/// the nemesis derives partition rotations — and the service its backoff
/// jitter — from the same mix.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic fault schedule of one directed link.
///
/// `next_op` draws decisions in frame-index order; the n-th call on any
/// stream built from the same `(seed, src, dst, profile)` returns the
/// same op. The stream never ends — chaos runs bound it by op count, not
/// by schedule length.
pub struct LinkFaultStream {
    rng: ChaCha8Rng,
    profile: FaultProfile,
    index: u64,
}

impl LinkFaultStream {
    /// Builds the stream for the directed link `src → dst` under
    /// `schedule_seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile's rates sum past 1000‰.
    pub fn new(schedule_seed: u64, src: NodeIndex, dst: NodeIndex, profile: FaultProfile) -> Self {
        assert!(
            profile.fault_pm() <= 1000,
            "fault rates exceed 1000 per mille"
        );
        let link_seed = mix64(schedule_seed ^ mix64(((src as u64) << 32) | (dst as u64)));
        LinkFaultStream {
            rng: <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(link_seed),
            profile,
            index: 0,
        }
    }

    /// Next frame index this stream will decide (number of draws so far).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Draws the decision for the next frame on the link, returning the
    /// frame index it applies to alongside the op.
    pub fn next_op(&mut self) -> (u64, FaultOp) {
        let at = self.index;
        self.index += 1;
        let p = self.profile;
        let roll: u32 = self.rng.gen_range(0..1000u32);
        let mut edge = p.delay_pm;
        if roll < edge {
            let ms = self.rng.gen_range(1..=p.delay_max_ms.max(1));
            return (at, FaultOp::Delay(ms));
        }
        edge += p.reorder_pm;
        if roll < edge {
            return (at, FaultOp::Reorder);
        }
        edge += p.duplicate_pm;
        if roll < edge {
            return (at, FaultOp::Duplicate);
        }
        edge += p.drop_pm;
        if roll < edge {
            return (at, FaultOp::Drop);
        }
        edge += p.cut_pm;
        if roll < edge {
            return (at, FaultOp::Cut);
        }
        edge += p.cut_mid_pm;
        if roll < edge {
            let raw: u32 = self.rng.gen_range(0..u32::MAX);
            return (at, FaultOp::CutMid(raw));
        }
        (at, FaultOp::Deliver)
    }
}

impl fmt::Debug for LinkFaultStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkFaultStream")
            .field("profile", &self.profile)
            .field("index", &self.index)
            .finish()
    }
}

/// [`DeliveryPolicy`] adapter: drives the simulator from the same fault
/// streams the TCP nemesis uses.
///
/// The simulator's channels are reliable (the paper's model), so lossy
/// ops map onto time: `Drop`/`Cut`/`CutMid` become a long delay (the
/// retransmit a real transport would perform), `Reorder` an extra hold
/// long enough for a successor to overtake, `Duplicate`/`Deliver` the
/// base delay. One stream per directed link, created lazily.
pub struct ChaosPolicy {
    seed: u64,
    profile: FaultProfile,
    base: u64,
    streams: Vec<((NodeIndex, NodeIndex), LinkFaultStream)>,
}

impl ChaosPolicy {
    /// Creates the policy; `base` is the fault-free delay in ticks.
    pub fn new(seed: u64, profile: FaultProfile, base: u64) -> Self {
        ChaosPolicy {
            seed,
            profile,
            base: base.max(1),
            streams: Vec::new(),
        }
    }

    fn stream(&mut self, src: NodeIndex, dst: NodeIndex) -> &mut LinkFaultStream {
        if let Some(i) = self.streams.iter().position(|(k, _)| *k == (src, dst)) {
            return &mut self.streams[i].1;
        }
        self.streams.push((
            (src, dst),
            LinkFaultStream::new(self.seed, src, dst, self.profile),
        ));
        let last = self.streams.len() - 1;
        &mut self.streams[last].1
    }
}

impl fmt::Debug for ChaosPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosPolicy")
            .field("seed", &self.seed)
            .field("profile", &self.profile)
            .field("base", &self.base)
            .field("links", &self.streams.len())
            .finish()
    }
}

impl DeliveryPolicy for ChaosPolicy {
    fn delay(&mut self, src: NodeIndex, dst: NodeIndex, _now: VirtualTime) -> u64 {
        let base = self.base;
        let (_, op) = self.stream(src, dst).next_op();
        match op {
            FaultOp::Deliver | FaultOp::Duplicate => base,
            FaultOp::Delay(ms) => base + ms,
            FaultOp::Reorder => base + 2,
            // A real transport retransmits after loss; model the loss as
            // late arrival so the channel stays reliable.
            FaultOp::Drop | FaultOp::Cut | FaultOp::CutMid(_) => base + 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(stream: &mut LinkFaultStream, n: usize) -> Vec<(u64, FaultOp)> {
        (0..n).map(|_| stream.next_op()).collect()
    }

    #[test]
    fn same_seed_same_link_same_stream() {
        let mut a = LinkFaultStream::new(42, 0, 1, FaultProfile::heavy());
        let mut b = LinkFaultStream::new(42, 0, 1, FaultProfile::heavy());
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
    }

    #[test]
    fn distinct_links_decorrelate() {
        let mut fwd = LinkFaultStream::new(42, 0, 1, FaultProfile::heavy());
        let mut rev = LinkFaultStream::new(42, 1, 0, FaultProfile::heavy());
        assert_ne!(drain(&mut fwd, 500), drain(&mut rev, 500));
    }

    #[test]
    fn off_profile_always_delivers() {
        let mut s = LinkFaultStream::new(9, 2, 3, FaultProfile::off());
        for (i, op) in drain(&mut s, 200) {
            assert_eq!(op, FaultOp::Deliver, "frame {i}");
        }
    }

    #[test]
    fn heavy_profile_exercises_every_op() {
        let mut s = LinkFaultStream::new(7, 0, 1, FaultProfile::heavy());
        let ops = drain(&mut s, 4000);
        let has = |f: fn(&FaultOp) -> bool| ops.iter().any(|(_, op)| f(op));
        assert!(has(|o| matches!(o, FaultOp::Deliver)));
        assert!(has(|o| matches!(o, FaultOp::Delay(_))));
        assert!(has(|o| matches!(o, FaultOp::Reorder)));
        assert!(has(|o| matches!(o, FaultOp::Duplicate)));
        assert!(has(|o| matches!(o, FaultOp::Drop)));
        assert!(has(|o| matches!(o, FaultOp::Cut)));
        assert!(has(|o| matches!(o, FaultOp::CutMid(_))));
    }

    #[test]
    fn indices_count_frames() {
        let mut s = LinkFaultStream::new(1, 0, 1, FaultProfile::light());
        for want in 0..10u64 {
            let (at, _) = s.next_op();
            assert_eq!(at, want);
        }
        assert_eq!(s.index(), 10);
    }

    #[test]
    fn chaos_policy_is_deterministic_and_floored() {
        let mut a = ChaosPolicy::new(3, FaultProfile::heavy(), 2);
        let mut b = ChaosPolicy::new(3, FaultProfile::heavy(), 2);
        for _ in 0..300 {
            let da = a.delay(0, 1, VirtualTime::ZERO);
            assert_eq!(da, b.delay(0, 1, VirtualTime::ZERO));
            assert!(da >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "per mille")]
    fn profile_rates_must_fit() {
        let mut p = FaultProfile::off();
        p.drop_pm = 600;
        p.duplicate_pm = 600;
        let _ = LinkFaultStream::new(0, 0, 1, p);
    }
}
