//! Traffic accounting for metadata-overhead experiments.

use crate::{NodeIndex, VirtualTime};
use serde::{Deserialize, Serialize};

/// Counters of messages and bytes per link and in aggregate, plus delivery
/// latency accumulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    num_nodes: usize,
    /// Flattened `src * n + dst` message counts.
    link_messages: Vec<u64>,
    /// Flattened `src * n + dst` byte counts.
    link_bytes: Vec<u64>,
    messages_sent: u64,
    bytes_sent: u64,
    messages_delivered: u64,
    /// Sum of delivery times, for mean latency (delivery time − 0 is not a
    /// latency; the network records times so callers can compute spans).
    last_delivery: VirtualTime,
}

impl NetStats {
    pub(crate) fn new(num_nodes: usize) -> Self {
        NetStats {
            num_nodes,
            link_messages: vec![0; num_nodes * num_nodes],
            link_bytes: vec![0; num_nodes * num_nodes],
            messages_sent: 0,
            bytes_sent: 0,
            messages_delivered: 0,
            last_delivery: VirtualTime::ZERO,
        }
    }

    pub(crate) fn record_send(&mut self, src: NodeIndex, dst: NodeIndex, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.link_messages[src * self.num_nodes + dst] += 1;
        self.link_bytes[src * self.num_nodes + dst] += bytes as u64;
    }

    pub(crate) fn record_delivery(
        &mut self,
        _src: NodeIndex,
        _dst: NodeIndex,
        _bytes: usize,
        at: VirtualTime,
    ) {
        self.messages_delivered += 1;
        self.last_delivery = self.last_delivery.max(at);
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages sent on the directed link `src → dst`.
    pub fn link_messages(&self, src: NodeIndex, dst: NodeIndex) -> u64 {
        self.link_messages[src * self.num_nodes + dst]
    }

    /// Bytes sent on the directed link `src → dst`.
    pub fn link_bytes(&self, src: NodeIndex, dst: NodeIndex) -> u64 {
        self.link_bytes[src * self.num_nodes + dst]
    }

    /// Time of the latest delivery.
    pub fn last_delivery(&self) -> VirtualTime {
        self.last_delivery
    }

    /// Mean bytes per message.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut s = NetStats::new(3);
        s.record_send(0, 1, 10);
        s.record_send(0, 1, 20);
        s.record_send(2, 0, 5);
        assert_eq!(s.messages_sent(), 3);
        assert_eq!(s.bytes_sent(), 35);
        assert_eq!(s.link_messages(0, 1), 2);
        assert_eq!(s.link_bytes(0, 1), 30);
        assert_eq!(s.link_messages(1, 0), 0);
        assert!((s.mean_message_bytes() - 35.0 / 3.0).abs() < 1e-9);
        s.record_delivery(0, 1, 10, VirtualTime(9));
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.last_delivery(), VirtualTime(9));
    }

    #[test]
    fn empty_stats() {
        let s = NetStats::new(2);
        assert_eq!(s.mean_message_bytes(), 0.0);
        assert_eq!(s.messages_sent(), 0);
    }
}
