//! Message delay policies.

use crate::{NodeIndex, VirtualTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Decides the in-flight delay of each message.
///
/// Policies see only (source, destination, send time), never payloads, so
/// protocol behaviour cannot leak into scheduling except through genuine
/// message-passing — the adversary of the paper's model.
pub trait DeliveryPolicy: fmt::Debug + Send {
    /// Delay, in ticks, for a message sent `src → dst` at `now`. Must be at
    /// least 1 so causality of the simulation itself is preserved.
    fn delay(&mut self, src: NodeIndex, dst: NodeIndex, now: VirtualTime) -> u64;
}

/// Independent uniformly random per-message delays in `[min, max]` — the
/// paper's asynchronous non-FIFO channel model. With `max > min`, later
/// messages routinely overtake earlier ones on the same link.
pub struct UniformDelay {
    rng: ChaCha8Rng,
    min: u64,
    max: u64,
}

impl UniformDelay {
    /// Creates the policy from a seed and an inclusive delay range.
    ///
    /// # Panics
    ///
    /// Panics if `min < 1` or `min > max`.
    pub fn new(seed: u64, min: u64, max: u64) -> Self {
        assert!(min >= 1 && min <= max, "need 1 ≤ min ≤ max");
        UniformDelay {
            rng: <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed),
            min,
            max,
        }
    }

    /// A loosely synchronous variant (Appendix D): single-hop delays in
    /// `[min, max]` with `max < l·min` guarantee that any dependency chain
    /// of `l` or more hops arrives after a direct one-hop message.
    ///
    /// # Panics
    ///
    /// Panics if the range cannot satisfy the constraint (`l < 2`).
    pub fn loosely_synchronous(seed: u64, min: u64, l: usize) -> Self {
        assert!(l >= 2, "loose synchrony needs a path bound ≥ 2");
        let max = (l as u64) * min - 1;
        Self::new(seed, min, max)
    }
}

impl fmt::Debug for UniformDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniformDelay")
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl DeliveryPolicy for UniformDelay {
    fn delay(&mut self, _src: NodeIndex, _dst: NodeIndex, _now: VirtualTime) -> u64 {
        self.rng.gen_range(self.min..=self.max)
    }
}

/// Constant delay on every link. Combined with the network's deterministic
/// FIFO tie-breaking this yields per-link FIFO channels.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(pub u64);

impl DeliveryPolicy for FixedDelay {
    fn delay(&mut self, _src: NodeIndex, _dst: NodeIndex, _now: VirtualTime) -> u64 {
        self.0.max(1)
    }
}

/// Per-link base delays plus uniform jitter — heterogeneous topologies such
/// as the ring-breaking relay of experiment E12, where relayed updates
/// traverse several slow hops.
pub struct PerLinkDelay {
    rng: ChaCha8Rng,
    default: u64,
    jitter: u64,
    overrides: Vec<((NodeIndex, NodeIndex), u64)>,
}

impl PerLinkDelay {
    /// Creates the policy with a default base delay and ± jitter.
    pub fn new(seed: u64, default: u64, jitter: u64) -> Self {
        PerLinkDelay {
            rng: <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed),
            default: default.max(1),
            jitter,
            overrides: Vec::new(),
        }
    }

    /// Overrides the base delay of one directed link.
    pub fn set_link(&mut self, src: NodeIndex, dst: NodeIndex, base: u64) {
        self.overrides.push(((src, dst), base.max(1)));
    }

    fn base(&self, src: NodeIndex, dst: NodeIndex) -> u64 {
        self.overrides
            .iter()
            .rev()
            .find(|(k, _)| *k == (src, dst))
            .map(|&(_, d)| d)
            .unwrap_or(self.default)
    }
}

impl fmt::Debug for PerLinkDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerLinkDelay")
            .field("default", &self.default)
            .field("jitter", &self.jitter)
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl DeliveryPolicy for PerLinkDelay {
    fn delay(&mut self, src: NodeIndex, dst: NodeIndex, _now: VirtualTime) -> u64 {
        let base = self.base(src, dst);
        if self.jitter == 0 {
            base
        } else {
            base + self.rng.gen_range(0..=self.jitter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_delay_stays_in_range() {
        let mut p = UniformDelay::new(1, 2, 9);
        for _ in 0..200 {
            let d = p.delay(0, 1, VirtualTime::ZERO);
            assert!((2..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_delay_is_deterministic_per_seed() {
        let mut a = UniformDelay::new(7, 1, 100);
        let mut b = UniformDelay::new(7, 1, 100);
        for _ in 0..50 {
            assert_eq!(
                a.delay(0, 1, VirtualTime::ZERO),
                b.delay(0, 1, VirtualTime::ZERO)
            );
        }
    }

    #[test]
    fn loosely_synchronous_bound() {
        let mut p = UniformDelay::loosely_synchronous(3, 10, 4);
        for _ in 0..200 {
            let d = p.delay(0, 1, VirtualTime::ZERO);
            assert!((10..40).contains(&d), "one hop must beat any 4-hop chain");
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ min ≤ max")]
    fn uniform_rejects_bad_range() {
        let _ = UniformDelay::new(0, 5, 4);
    }

    #[test]
    fn fixed_delay_floor() {
        let mut p = FixedDelay(0);
        assert_eq!(p.delay(0, 1, VirtualTime::ZERO), 1);
    }

    #[test]
    fn per_link_overrides() {
        let mut p = PerLinkDelay::new(0, 5, 0);
        p.set_link(0, 1, 50);
        assert_eq!(p.delay(0, 1, VirtualTime::ZERO), 50);
        assert_eq!(p.delay(1, 0, VirtualTime::ZERO), 5);
        // Latest override wins.
        p.set_link(0, 1, 70);
        assert_eq!(p.delay(0, 1, VirtualTime::ZERO), 70);
    }
}
