//! Quickstart: a partially replicated, causally consistent shared memory in
//! a few lines.
//!
//! Run with `cargo run --example quickstart`.

use prcc::clock::EdgeProtocol;
use prcc::core::Cluster;
use prcc::graph::{RegisterId, ReplicaId, ShareGraphBuilder};
use prcc::net::UniformDelay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three replicas, partially replicated: replica 0 and 1 share `account`,
    // replica 1 and 2 share `audit`. Replica 0 never sees `audit` and
    // replica 2 never sees `account` — yet causal order across them is
    // preserved.
    let account = RegisterId(0);
    let audit = RegisterId(1);
    let graph = ShareGraphBuilder::new()
        .replica([account])
        .replica([account, audit])
        .replica([audit])
        .build()?;

    // The paper's algorithm: per-replica timestamps indexed by the edges of
    // the timestamp graph G_i — here a tree, so only incident edges.
    let protocol = EdgeProtocol::new(graph);

    // An asynchronous, non-FIFO network (seeded for reproducibility).
    let mut cluster = Cluster::new(protocol, Box::new(UniformDelay::new(42, 1, 20)));

    // Replica 0 updates the account; replica 1 observes it and writes an
    // audit record: the audit record causally depends on the deposit.
    cluster.write(ReplicaId(0), account, 100)?;
    cluster.run_to_quiescence();
    assert_eq!(cluster.read(ReplicaId(1), account)?, Some(100));
    cluster.write(ReplicaId(1), audit, 1)?;
    cluster.run_to_quiescence();

    // Replica 2 sees the audit record...
    assert_eq!(cluster.read(ReplicaId(2), audit)?, Some(1));
    // ...and the built-in oracle confirms the whole run was causally
    // consistent (and would have caught any violation).
    let verdict = cluster.verdict();
    println!("verdict: {verdict}");
    assert!(verdict.is_consistent());

    let stats = cluster.stats();
    println!(
        "updates: {}, messages: {}, bytes on the wire: {}",
        stats.updates_issued, stats.messages_sent, stats.bytes_sent
    );
    println!(
        "timestamp entries per replica: {:?} (tree: 2 neighbors → 2·N_i)",
        stats.timestamp_entries
    );
    Ok(())
}
