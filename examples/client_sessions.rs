//! The client-server architecture (Figure 1b): session guarantees across
//! replicas that share no data.
//!
//! A roaming client reads its shopping cart in one datacenter and then
//! talks to another datacenter that stores entirely different registers.
//! Causal dependencies flow *through the client*: the second datacenter
//! buffers the request until it has caught up (predicates J1/J2), and the
//! augmented timestamp graphs of Definition 28 grow extra edges because the
//! client closes a cycle through the share graph.
//!
//! Run with `cargo run --example client_sessions`.

use prcc::clientserver::CsSystem;
use prcc::graph::{
    topologies, AugmentedShareGraph, ClientId, RegisterId, ReplicaId, TimestampGraph,
};
use prcc::net::UniformDelay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A chain of four datacenters (line share graph) and three clients:
    // a roaming client spanning the two ends, and two local ones.
    let g = topologies::line(4);
    let roaming = ClientId(0);
    let local_w = ClientId(1);
    let local_e = ClientId(2);
    let aug = AugmentedShareGraph::new(
        g.clone(),
        vec![
            vec![ReplicaId(0), ReplicaId(3)],
            vec![ReplicaId(0), ReplicaId(1)],
            vec![ReplicaId(2), ReplicaId(3)],
        ],
    )?;

    println!("augmented timestamp graphs (client bridge closes a cycle):");
    for i in g.replicas() {
        let plain = TimestampGraph::compute(&g, i).len();
        let augd = aug.augmented_timestamp_graph(i).len();
        println!("  {i}: |E_i| = {plain} → |Ê_i| = {augd}");
    }

    let mut sys = CsSystem::new(aug, Box::new(UniformDelay::new(7, 1, 30)));

    // The west-side client fills the cart at datacenter 0.
    sys.write(local_w, ReplicaId(0), RegisterId(0), 3)?;
    // The roaming client *reads* at 0 — its session now depends on that
    // write —
    let cart = sys.read(roaming, ReplicaId(0), RegisterId(0))?;
    println!("\nroaming client sees cart = {cart:?} at datacenter 0");
    // — and then checks out at datacenter 3. The request carries µ_c and is
    // buffered until datacenter 3 satisfies J2 for it.
    sys.write(roaming, ReplicaId(3), RegisterId(2), 1)?;
    // The east-side client reads the checkout marker.
    let checked_out = sys.read(local_e, ReplicaId(3), RegisterId(2))?;
    println!("east client sees checkout = {checked_out:?} at datacenter 3");

    sys.run_to_quiescence();
    let v = sys.verdict();
    println!(
        "\nconsistent under ↪′ (client sessions included): {}",
        v.is_consistent()
    );
    assert!(v.is_consistent());
    let st = sys.stats();
    println!(
        "writes {}, reads {}, update messages {}, rpc messages {}, buffered requests {}",
        st.writes, st.reads, st.update_messages, st.rpc_messages, st.buffered_requests
    );
    Ok(())
}
