//! A geo-distributed social network with partial replication.
//!
//! Five datacenters store only the data of their regions (plus overlap for
//! neighbouring regions). The classic causal-consistency anomaly — a *reply*
//! becoming visible before the *post* it answers — is impossible: the
//! edge-indexed timestamps delay the reply's application until the post has
//! arrived, even though the two travel on independent, reordering links.
//!
//! Run with `cargo run --example social_network`.

use prcc::clock::EdgeProtocol;
use prcc::core::Cluster;
use prcc::graph::{RegisterId, ReplicaId, ShareGraphBuilder, TimestampGraph};
use prcc::net::UniformDelay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Registers: per-region "walls" (who stores which wall is the partial
    // replication pattern).
    let wall_eu = RegisterId(0); // stored in EU + US
    let wall_us = RegisterId(1); // stored in US + EU
    let wall_asia = RegisterId(2); // stored in ASIA + US
    let wall_au = RegisterId(3); // stored in AU + ASIA
    let wall_sa = RegisterId(4); // stored in SA + EU

    let [eu, us, asia, au, _sa] = [0, 1, 2, 3, 4].map(ReplicaId);
    let graph = ShareGraphBuilder::new()
        .replica([wall_eu, wall_us, wall_sa]) // EU
        .replica([wall_eu, wall_us, wall_asia]) // US
        .replica([wall_asia, wall_au]) // ASIA
        .replica([wall_au]) // AU
        .replica([wall_sa]) // SA
        .build()?;

    println!("datacenters: EU US ASIA AU SA");
    for dc in graph.replicas() {
        let tsg = TimestampGraph::compute(&graph, dc);
        println!(
            "  {dc}: stores {}, timestamp tracks {} edges ({} via loops)",
            graph.registers_of(dc),
            tsg.len(),
            tsg.loop_edges().count()
        );
    }

    let protocol = EdgeProtocol::new(graph.clone());
    let mut cluster = Cluster::new(protocol, Box::new(UniformDelay::new(2024, 5, 80)));

    // Alice (EU) posts on the EU wall; the update races toward the US.
    cluster.write(eu, wall_eu, 0xA11CE)?;
    // Bob (US) sees the post, replies on the US wall — but only after his
    // datacenter applied Alice's post (we pump the network until then).
    while cluster.read(us, wall_eu)? != Some(0xA11CE) {
        assert!(cluster.step(), "network drained before the post arrived");
    }
    cluster.write(us, wall_us, 0xB0B)?;
    // Carol (ASIA) pushes an unrelated (concurrent) update.
    cluster.write(asia, wall_au, 0xCA401)?;

    cluster.run_to_quiescence();

    // Everyone who stores both walls sees reply-after-post; the oracle
    // verified every application order along the way.
    assert_eq!(cluster.read(eu, wall_us)?, Some(0xB0B));
    assert_eq!(cluster.read(au, wall_au)?, Some(0xCA401));
    let verdict = cluster.verdict();
    println!("\nverdict: {verdict}");
    assert!(verdict.is_consistent());

    let stats = cluster.stats();
    println!(
        "messages {} (mean {:.1} bytes), mean apply latency {:.1} ticks, \
         pending stalls {:.1} ticks",
        stats.messages_sent,
        stats.bytes_per_message(),
        stats.mean_apply_latency(),
        stats.mean_pending_stall()
    );
    Ok(())
}
