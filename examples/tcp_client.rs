//! Drive a running `prcc-serve` cluster from a separate process.
//!
//! Start the cluster first, then point this example at the *client* ports:
//!
//! ```text
//! cargo run --release --bin prcc-serve -- --nodes 4 --base-port 7451 &
//! cargo run --release --example tcp_client -- 7452 7454 7456 7458
//! ```
//!
//! The example writes a causal chain through two different nodes, reads it
//! back from a third, prints every node's counters, and shuts the cluster
//! down.

use prcc::graph::RegisterId;
use prcc::service::ServiceClient;
use std::net::{Ipv4Addr, SocketAddr};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ports: Vec<u16> = std::env::args()
        .skip(1)
        .map(|raw| raw.parse())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("usage: tcp_client <client-port>...: {e}"))?;
    if ports.len() < 2 {
        return Err("need at least two client ports".into());
    }
    let addr = |p: u16| SocketAddr::from((Ipv4Addr::LOCALHOST, p));

    // Ring topology: register i is shared by replicas i and i+1 mod n.
    let mut c0 = ServiceClient::connect(addr(ports[0]))?;
    let mut c1 = ServiceClient::connect(addr(ports[1]))?;

    println!(
        "write register 0 = 41 via node 0: {}",
        c0.write(RegisterId(0), 41)?
    );
    // Wait for propagation to node 1 (the other holder of register 0).
    let deadline = Instant::now() + Duration::from_secs(10);
    while c1.read(RegisterId(0))? != Some(41) {
        if Instant::now() > deadline {
            return Err("register 0 never reached node 1".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("node 1 observed register 0 = 41");
    println!(
        "write register 1 = 42 via node 1: {}",
        c1.write(RegisterId(1), 42)?
    );

    std::thread::sleep(Duration::from_millis(200));
    for (i, &port) in ports.iter().enumerate() {
        let status = ServiceClient::connect(addr(port))?.status()?;
        println!(
            "node {i}: issued={} sent={} received={} applies={} pending={}",
            status.issued,
            status.messages_sent,
            status.messages_received,
            status.applies,
            status.pending
        );
    }
    for &port in &ports {
        ServiceClient::connect(addr(port))?.shutdown()?;
    }
    println!("cluster shut down.");
    Ok(())
}
