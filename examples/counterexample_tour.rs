//! A guided tour of the paper's correction to Hélary & Milani: both
//! counterexamples (Figures 6, 8a, 8b), ending with the executable safety
//! violation that the modified minimal-hoop criterion admits.
//!
//! Run with `cargo run --example counterexample_tour`.

use prcc::baselines::edge_sets;
use prcc::clock::EdgeProtocol;
use prcc::core::Cluster;
use prcc::graph::{hoops, topologies, Edge, RegisterId, TimestampGraph};
use prcc::net::FixedDelay;

fn main() {
    // ---- Counterexample 1 (Figures 6 / 8a) --------------------------------
    let (g1, r1) = topologies::counterexample1();
    println!("Counterexample 1: 7-cycle with chords from y and z sharing.");
    let hoop = hoops::Hoop {
        x: r1.x,
        path: vec![r1.j, r1.b1, r1.b2, r1.i, r1.a1, r1.a2, r1.k],
    };
    println!(
        "  the hoop {hoop} is minimal under the ORIGINAL definition: {}",
        hoop.is_minimal(&g1)
    );
    println!("  ⇒ Hélary–Milani make replica i track x-updates by j and k.");
    let gi = TimestampGraph::compute(&g1, r1.i);
    println!(
        "  but no (i, e_jk)- or (i, e_kj)-loop exists: e_jk ∈ E_i = {}, e_kj ∈ E_i = {}",
        gi.contains(Edge::new(r1.j, r1.k)),
        gi.contains(Edge::new(r1.k, r1.j)),
    );
    println!("  ⇒ Theorem 8 proves the tracking unnecessary (E04 validates it empirically).\n");

    // ---- Counterexample 2 (Figure 8b) -------------------------------------
    let (g2, r2) = topologies::counterexample2();
    println!("Counterexample 2: the same cycle, only y triply shared.");
    let hoop2 = hoops::Hoop {
        x: r2.x,
        path: vec![r2.j, r2.b1, r2.b2, r2.i, r2.a1, r2.a2, r2.k],
    };
    println!(
        "  the hoop is minimal under the MODIFIED definition: {}",
        hoop2.is_minimal_modified(&g2)
    );
    println!("  ⇒ the modified criterion lets replica i forget x entirely.");
    let gi2 = TimestampGraph::compute(&g2, r2.i);
    println!(
        "  but an (i, e_kj)-loop exists: e_kj ∈ E_i = {}",
        gi2.contains(Edge::new(r2.k, r2.j))
    );

    // ---- The executable violation -----------------------------------------
    println!("\nDriving the adversarial schedule against both protocols:");
    println!("  hold k→j; k writes x; chain k→a2→a1→i→b2→b1→j.");
    for (name, protocol) in [
        ("modified-hoops", edge_sets::hoop_protocol(&g2, true)),
        ("exact E_i     ", EdgeProtocol::new(g2.clone())),
    ] {
        let mut cluster = Cluster::new(protocol, Box::new(FixedDelay(5)));
        cluster.net_mut().hold_link(r2.k.index(), r2.j.index());
        cluster.write(r2.k, r2.x, 1).unwrap();
        cluster.run_to_quiescence();
        for (rep, reg) in [
            (r2.k, RegisterId(5)),
            (r2.a2, RegisterId(6)),
            (r2.a1, RegisterId(4)),
            (r2.i, RegisterId(3)),
            (r2.b2, r2.y),
            (r2.b1, RegisterId(2)),
        ] {
            cluster.write(rep, reg, 0).unwrap();
            cluster.run_to_quiescence();
        }
        let safety = cluster.verdict().safety;
        match safety.first() {
            Some(v) => println!("  {name}: ✗ {v}"),
            None => println!("  {name}: ✓ no safety violation"),
        }
    }
}
