//! Metadata explorer: print the timestamp graphs, compression analysis and
//! Graphviz rendering of a chosen topology.
//!
//! Usage:
//! `cargo run --example metadata_explorer -- <ring|line|star|clique|pairwise|figure5|ce1|ce2> [n] [--dot]`

use prcc::graph::{analysis, dot, topologies, ReplicaId, ShareGraph, TimestampGraph};

fn build(kind: &str, n: usize) -> ShareGraph {
    match kind {
        "ring" => topologies::ring(n),
        "line" => topologies::line(n),
        "star" => topologies::star(n),
        "clique" => topologies::clique_full(n, n.max(2)),
        "pairwise" => topologies::clique_pairwise(n),
        "figure5" => topologies::figure5(),
        "ce1" => topologies::counterexample1().0,
        "ce2" => topologies::counterexample2().0,
        other => {
            eprintln!("unknown topology '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args.first().map(String::as_str).unwrap_or("figure5");
    let n: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(6);
    let want_dot = args.iter().any(|a| a == "--dot");
    let want_why = args.iter().any(|a| a == "--why");

    let g = build(kind, n);
    println!(
        "{kind}: {} replicas, {} registers, {} directed share edges\n",
        g.num_replicas(),
        g.num_registers(),
        g.num_directed_edges()
    );

    let mut total_raw = 0;
    let mut total_rank = 0;
    for i in g.replicas() {
        let tsg = TimestampGraph::compute(&g, i);
        let rep = analysis::compression_report(&g, &tsg);
        total_raw += rep.raw_entries;
        total_rank += rep.rank_entries;
        println!(
            "{i}: X_i = {}, |E_i| = {} ({} incident + {} loop), compressed {} \
             (register-level {})",
            g.registers_of(i),
            tsg.len(),
            tsg.incident_edges().count(),
            tsg.loop_edges().count(),
            rep.rank_entries,
            rep.register_entries,
        );
    }
    println!(
        "\ntotals: raw {total_raw} counters, rank-compressed {total_rank} \
         ({:.0}% saved)",
        if total_raw == 0 {
            0.0
        } else {
            100.0 * (1.0 - total_rank as f64 / total_raw as f64)
        }
    );

    if want_why {
        println!("\n--- loop witnesses for replica 0 (why each non-incident edge is tracked) ---");
        let (_, witnesses) = TimestampGraph::compute_with_witnesses(&g, ReplicaId(0));
        if witnesses.is_empty() {
            println!("(none — replica 0 tracks only incident edges)");
        }
        for w in witnesses {
            println!("{w}");
        }
    }

    if want_dot {
        println!("\n--- share graph (Graphviz) ---");
        print!("{}", dot::share_graph_dot(&g));
        println!("\n--- timestamp graph of replica 0 ---");
        print!(
            "{}",
            dot::timestamp_graph_dot(&TimestampGraph::compute(&g, ReplicaId(0)))
        );
    }
}
