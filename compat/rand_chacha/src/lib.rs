//! Offline compatibility shim for `rand_chacha`: a genuine ChaCha8 stream
//! cipher used as a deterministic RNG.
//!
//! Output streams are not bit-compatible with upstream `rand_chacha` (word
//! serialization and `seed_from_u64` expansion differ), which is acceptable:
//! the workspace relies on determinism per seed, not upstream streams.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (from the seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    word: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_looks_balanced() {
        // Crude sanity: mean of uniform [0, 100) samples near 50.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((40.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
