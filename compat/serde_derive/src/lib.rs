//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize, Deserialize)]` must resolve to *something* for the
//! annotated types to compile; in this hermetic workspace it expands to an
//! empty token stream. The `serde` attribute is registered so field/container
//! attributes would not break compilation if ever added.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; see the `serde` shim crate for rationale.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the `serde` shim crate for rationale.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
