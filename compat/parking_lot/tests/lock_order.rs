//! Lock-order detector regression tests.
//!
//! These run whenever the detector is compiled in: every `debug_assertions`
//! build (a plain `cargo test`) and release builds with `--features
//! lock-order`. In a release build without the feature the detector is
//! compiled out and the inversion tests are skipped — `enabled()` reports
//! which regime the binary is in.

use parking_lot::{lock_order, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// Runs `f` and returns the panic message it died with, if any.
fn panic_message(f: impl FnOnce()) -> Option<String> {
    let result = catch_unwind(AssertUnwindSafe(f));
    result.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    })
}

#[test]
fn ab_ba_inversion_panics_naming_both_sites() {
    if !lock_order::enabled() {
        return;
    }
    let a = Mutex::named(0u32, "inversion.a");
    let b = Mutex::named(0u32, "inversion.b");
    // Establish A -> B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // The inverted acquisition must panic deterministically — no concurrent
    // schedule required, the graph already knows the established order.
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    })
    .expect("BA after AB must panic");
    assert!(
        msg.contains("inversion.a") && msg.contains("inversion.b"),
        "panic must name both lock sites, got: {msg}"
    );
}

#[test]
fn consistent_order_never_panics() {
    if !lock_order::enabled() {
        return;
    }
    let a = Arc::new(Mutex::named(0u64, "consistent.a"));
    let b = Arc::new(Mutex::named(0u64, "consistent.b"));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for _ in 0..200 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join()
            .expect("a consistent A-then-B order must never trip");
    }
    assert_eq!(*a.lock(), 800);
    assert_eq!(*b.lock(), 800);
}

#[test]
fn three_lock_cycle_is_caught_at_the_closing_edge() {
    if !lock_order::enabled() {
        return;
    }
    let a = Mutex::named(0u32, "cycle3.a");
    let b = Mutex::named(0u32, "cycle3.b");
    let c = Mutex::named(0u32, "cycle3.c");
    // A -> B and B -> C are fine individually...
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // ...but C -> A closes the cycle through the transitive path.
    let msg = panic_message(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    })
    .expect("closing a 3-cycle must panic");
    assert!(
        msg.contains("cycle3.c") && msg.contains("cycle3.a"),
        "panic names the closing edge's two sites, got: {msg}"
    );
}

#[test]
fn rwlock_inversion_against_mutex_is_caught() {
    if !lock_order::enabled() {
        return;
    }
    let m = Mutex::named(0u32, "mixed.mutex");
    let rw = RwLock::named(0u32, "mixed.rwlock");
    {
        let _gm = m.lock();
        let _gr = rw.read();
    }
    let msg = panic_message(|| {
        let _gw = rw.write();
        let _gm = m.lock();
    })
    .expect("rwlock/mutex inversion must panic");
    assert!(
        msg.contains("mixed.mutex") && msg.contains("mixed.rwlock"),
        "panic must name both sites, got: {msg}"
    );
}

#[test]
fn guard_drop_during_unwind_clears_the_held_set() {
    if !lock_order::enabled() {
        return;
    }
    let a = Mutex::named(0u32, "unwind.a");
    let b = Mutex::named(0u32, "unwind.b");
    let msg = panic_message(|| {
        let _ga = a.lock();
        panic!("holder dies");
    });
    assert_eq!(msg.as_deref(), Some("holder dies"));
    // Had the unwind leaked `a` in this thread's held set, this acquisition
    // would record a phantom a -> b edge; the reverse order below would
    // then falsely trip. Both must stay silent.
    {
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    {
        let _ga = a.lock();
    }
}

#[test]
fn try_lock_does_not_establish_ordering() {
    if !lock_order::enabled() {
        return;
    }
    let a = Mutex::named(0u32, "trylock.a");
    let b = Mutex::named(0u32, "trylock.b");
    // try_lock cannot block, so holding B via try_lock and then taking A
    // after an established A -> B order is not a deadlock schedule.
    {
        let _ga = a.lock();
        let _gb = b.try_lock().expect("uncontended");
    }
    {
        let _gb = b.try_lock().expect("uncontended");
        let _ga = a.lock();
    }
}
