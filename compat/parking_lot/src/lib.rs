//! Offline compatibility shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free, non-poisoning
//! API (`lock()` returns the guard directly; a panic while holding the lock
//! does not poison it for later users).
//!
//! This shim is also the workspace's *only* sanctioned locking primitive
//! (enforced by `prcc-lint` rule `lock-hygiene`), which makes it the one
//! place a runtime lock-order detector can see every acquisition in the
//! process. With the detector compiled in — any `debug_assertions` build,
//! or a release build with the `lock-order` cargo feature — every `Mutex`
//! and `RwLock` carries a process-unique lock id plus an optional static
//! *site* name ([`Mutex::named`] / [`RwLock::named`]); each blocking
//! acquisition records `held -> acquiring` edges into a global acquisition
//! graph and panics the moment an edge closes a cycle, naming both lock
//! sites involved. A whole `cargo test` run therefore doubles as a
//! deadlock-regression harness: an AB/BA inversion anywhere in the suite
//! fails deterministically, even if the interleaving that would actually
//! deadlock never fires. Release builds without the feature compile the
//! detector out entirely — guards are zero-cost newtypes over the std
//! guards.
//!
//! `try_lock`/`try_read`/`try_write` acquisitions are tracked as *held*
//! (later blocking acquisitions order against them) but record no edges of
//! their own: a non-blocking acquisition can never be the waiting half of a
//! deadlock.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// The lock-order detector. Compiled (and running) in `debug_assertions`
/// builds and under the `lock-order` feature; a stub otherwise.
pub mod lock_order {
    /// Whether the lock-order detector is compiled into this build.
    pub const fn enabled() -> bool {
        cfg!(any(debug_assertions, feature = "lock-order"))
    }

    #[cfg(any(debug_assertions, feature = "lock-order"))]
    pub(crate) mod imp {
        use std::cell::RefCell;
        use std::collections::{HashMap, HashSet};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

        /// Process-unique lock-instance ids (0 is never assigned).
        static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

        pub(crate) fn new_lock_id() -> u64 {
            NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed)
        }

        /// The global acquisition graph: `edges[u]` holds every lock id
        /// ever acquired (blocking) while `u` was held, `names` the site
        /// labels. Guarded by a *std* mutex — the detector must not recurse
        /// into itself.
        struct Graph {
            edges: HashMap<u64, HashSet<u64>>,
            names: HashMap<u64, &'static str>,
        }

        fn graph() -> &'static StdMutex<Graph> {
            static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
            GRAPH.get_or_init(|| {
                StdMutex::new(Graph {
                    edges: HashMap::new(),
                    names: HashMap::new(),
                })
            })
        }

        thread_local! {
            /// Lock ids this thread currently holds, in acquisition order.
            static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }

        pub(crate) fn register(id: u64, site: &'static str) {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            g.names.insert(id, site);
        }

        fn site_of(g: &Graph, id: u64) -> String {
            match g.names.get(&id) {
                Some(name) => format!("`{name}` (lock #{id})"),
                None => format!("unnamed lock #{id}"),
            }
        }

        /// Depth-first reachability over the edge map.
        fn reaches(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(u) = stack.pop() {
                if u == to {
                    return true;
                }
                if !seen.insert(u) {
                    continue;
                }
                if let Some(next) = edges.get(&u) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        }

        /// A held-set entry; popped when the guard drops (including during
        /// unwinding, so a panicking holder leaves no stale entry behind).
        pub(crate) struct Acquired(u64);

        impl Drop for Acquired {
            fn drop(&mut self) {
                let id = self.0;
                HELD.with(|h| {
                    let mut held = h.borrow_mut();
                    if let Some(pos) = held.iter().rposition(|&x| x == id) {
                        held.remove(pos);
                    }
                });
            }
        }

        /// Records a *blocking* acquisition of `id`: adds one edge per held
        /// lock and panics — naming both sites — if any new edge closes a
        /// cycle in the acquisition graph. Returns the held-set token.
        pub(crate) fn acquire(id: u64) -> Acquired {
            let inversion: Option<String> = HELD.with(|h| {
                let held = h.borrow();
                if held.is_empty() {
                    return None;
                }
                let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
                for &u in held.iter() {
                    if u == id {
                        // Re-acquiring a lock this thread already holds
                        // (shared RwLock reads): no ordering information.
                        continue;
                    }
                    if g.edges.entry(u).or_default().insert(id) && reaches(&g.edges, id, u) {
                        return Some(format!(
                            "lock-order inversion: acquiring {} while holding {} \
                             contradicts the already-established acquisition order \
                             (the graph holds a path from the former back to the \
                             latter); a schedule acquiring them concurrently in \
                             both orders deadlocks",
                            site_of(&g, id),
                            site_of(&g, u),
                        ));
                    }
                }
                None
            });
            // Panic only after the graph guard above is released.
            if let Some(msg) = inversion {
                panic!("{msg}");
            }
            HELD.with(|h| h.borrow_mut().push(id));
            Acquired(id)
        }

        /// Records a *non-blocking* acquisition: held-set only, no edges
        /// (a `try_` acquisition never waits, so it cannot deadlock).
        pub(crate) fn acquire_try(id: u64) -> Acquired {
            HELD.with(|h| h.borrow_mut().push(id));
            Acquired(id)
        }
    }
}

#[cfg(any(debug_assertions, feature = "lock-order"))]
use lock_order::imp as det;

/// The per-lock detector state: a process-unique id, assigned at
/// construction. Compiled out entirely when the detector is off.
#[cfg(any(debug_assertions, feature = "lock-order"))]
#[derive(Debug)]
struct LockId(u64);

#[cfg(any(debug_assertions, feature = "lock-order"))]
impl LockId {
    fn new(site: Option<&'static str>) -> Self {
        let id = det::new_lock_id();
        if let Some(site) = site {
            det::register(id, site);
        }
        LockId(id)
    }
}

// The unit stand-in is "never read" by design — it exists so the lock
// structs have the same shape whether or not the detector is compiled.
#[cfg(not(any(debug_assertions, feature = "lock-order")))]
#[derive(Debug)]
#[allow(dead_code)]
struct LockId;

#[cfg(not(any(debug_assertions, feature = "lock-order")))]
impl LockId {
    fn new(_site: Option<&'static str>) -> Self {
        LockId
    }
}

macro_rules! guard_struct {
    ($(#[$doc:meta])* $name:ident, $std:ident) => {
        $(#[$doc])*
        pub struct $name<'a, T: ?Sized> {
            inner: std::sync::$std<'a, T>,
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: det::Acquired,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&**self, f)
            }
        }
    };
}

guard_struct!(
    /// Guard returned by [`Mutex::lock`]; releases the lock on drop.
    MutexGuard,
    MutexGuard
);
guard_struct!(
    /// Shared guard returned by [`RwLock::read`].
    RwLockReadGuard,
    RwLockReadGuard
);
guard_struct!(
    /// Exclusive guard returned by [`RwLock::write`].
    RwLockWriteGuard,
    RwLockWriteGuard
);

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutex whose `lock` never fails, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    // Read only when the lock-order detector is compiled in.
    #[allow(dead_code)]
    id: LockId,
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: LockId::new(None),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates the mutex with a static *site* name for lock-order
    /// diagnostics: an inversion panic names this site. With the detector
    /// compiled out this is identical to [`Mutex::new`].
    pub fn named(value: T, site: &'static str) -> Self {
        Mutex {
            id: LockId::new(Some(site)),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        let held = det::acquire(self.id.0);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: held,
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: det::acquire_try(self.id.0),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`: `read`/`write`
/// return guards directly and poisoning is ignored.
pub struct RwLock<T: ?Sized> {
    // Read only when the lock-order detector is compiled in.
    #[allow(dead_code)]
    id: LockId,
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            id: LockId::new(None),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates the lock with a static site name for lock-order diagnostics.
    pub fn named(value: T, site: &'static str) -> Self {
        RwLock {
            id: LockId::new(Some(site)),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        let held = det::acquire(self.id.0);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: held,
        }
    }

    /// Acquires the exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        let held = det::acquire(self.id.0);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: held,
        }
    }

    /// Tries to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: det::acquire_try(self.id.0),
        })
    }

    /// Tries to acquire the write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-order"))]
            _held: det::acquire_try(self.id.0),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_counting() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning surfaced");
    }

    #[test]
    fn rwlock_survives_panic_in_write_holder() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 7, "no poisoning surfaced");
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0u32);
        let held = m.lock();
        assert!(
            m.try_lock().is_none(),
            "try_lock must not acquire a held mutex"
        );
        drop(held);
        let mut guard = m.try_lock().expect("released mutex must try_lock");
        *guard = 3;
        drop(guard);
        assert_eq!(*m.lock(), 3);
    }

    #[test]
    fn try_lock_contention_across_threads() {
        let m = Arc::new(Mutex::new(()));
        let (hold_tx, hold_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let _guard = m.lock();
                hold_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
        };
        hold_rx.recv().unwrap();
        assert!(m.try_lock().is_none(), "held in another thread");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        assert!(m.try_lock().is_some(), "free after the holder exits");
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(1u32);
        let r1 = l.read();
        let r2 = l.try_read().expect("readers share");
        assert_eq!((*r1, *r2), (1, 1));
        assert!(l.try_write().is_none(), "writer excluded by readers");
        drop((r1, r2));
        *l.try_write().expect("free lock must try_write") = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn named_locks_behave_like_anonymous_ones() {
        let m = Mutex::named(41, "tests.named");
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
        let l = RwLock::named(1, "tests.named_rw");
        assert_eq!(*l.read(), 1);
    }
}
