//! Offline compatibility shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free, non-poisoning
//! API (`lock()` returns the guard directly; a panic while holding the lock
//! does not poison it for later users).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never fails, mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_counting() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning surfaced");
    }
}
