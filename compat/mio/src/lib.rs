//! Offline compatibility shim: the slice of `mio`'s polling API the
//! reactor needs — [`Poll`], [`Events`], [`Token`], [`Interest`],
//! [`Waker`] — implemented directly over `epoll_create1` / `epoll_ctl` /
//! `epoll_wait`, `eventfd`, `fcntl`, and a non-blocking `connect`, all
//! declared as thin libc FFI (this workspace links nothing beyond libstd
//! and libc, which libstd already pulls in).
//!
//! Like `compat/parking_lot` (which carries the workspace's only
//! lock-order detector), this crate is the designated home for an
//! otherwise-forbidden capability: every `prcc-*` crate keeps
//! `#![forbid(unsafe_code)]`, and the raw syscall surface lives here
//! alone, wrapped into a safe API whose handles close their file
//! descriptors on drop.
//!
//! Scope notes, where this intentionally diverges from upstream `mio`:
//!
//! * Linux-only, level-triggered epoll. The reactor re-arms write
//!   interest explicitly instead of relying on edge semantics.
//! * Registration takes any `&impl AsRawFd` instead of a `Source` trait;
//!   the caller keeps ownership of the socket.
//! * [`dial`] performs the non-blocking `socket(2)`/`connect(2)` pair
//!   that std cannot express (std's `TcpStream::connect` always blocks)
//!   and hands back a std `TcpStream` mid-handshake; completion is
//!   observed as a WRITABLE event plus [`std::net::TcpStream::take_error`].

// The prcc-lint forbid-unsafe rule accepts this marker (compat/ crates
// only) in place of `#![forbid(unsafe_code)]`: every unsafe operation
// here must sit in an explicit `unsafe {}` block stating its contract,
// even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

mod sys {
    //! The entire unsafe surface: FFI declarations and the call sites
    //! that wrap them into `io::Result`.

    use std::io;

    /// `epoll_event` as the kernel ABI lays it out. On x86-64 the struct
    /// is packed (no padding between the 32-bit mask and 64-bit data);
    /// other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const EINPROGRESS: i32 = 115;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<i32> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn epoll_add(epfd: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
    }

    pub fn epoll_mod(epfd: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
    }

    pub fn epoll_del(epfd: i32, fd: i32) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// One `epoll_wait` call; fills `buf` and returns the event count.
    /// `timeout_ms` follows the syscall convention: `-1` blocks, `0`
    /// polls. `EINTR` is surfaced as `Ok(0)` (a spurious empty wakeup),
    /// which every caller must already tolerate.
    pub fn epoll_wait_into(
        epfd: i32,
        buf: &mut Vec<EpollEvent>,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        buf.clear();
        let cap = buf.capacity().max(1) as i32;
        buf.reserve(cap as usize);
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        // The kernel wrote `n` events into the spare capacity.
        unsafe { buf.set_len(n as usize) };
        Ok(n as usize)
    }

    pub fn eventfd_new() -> io::Result<i32> {
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    pub fn close_fd(fd: i32) {
        unsafe { close(fd) };
    }

    /// Writes one `u64` increment into an eventfd.
    pub fn eventfd_signal(fd: i32) -> io::Result<()> {
        let one = 1u64.to_ne_bytes();
        let n = unsafe { write(fd, one.as_ptr(), one.len()) };
        // EAGAIN means the counter is saturated — the reader is already
        // guaranteed a wakeup, so a full eventfd is success.
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Reads (and thereby resets) an eventfd counter.
    pub fn eventfd_drain(fd: i32) {
        let mut buf = [0u8; 8];
        unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    }

    /// Sets `O_NONBLOCK` on an arbitrary descriptor via `fcntl`.
    pub fn set_nonblocking_fd(fd: i32) -> io::Result<()> {
        let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
        cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
    }

    /// `sockaddr_in` / `sockaddr_in6` laid out by hand: 16 bytes for v4,
    /// 28 for v6; family in native order, port and address big-endian.
    fn sockaddr_bytes(addr: &super::SocketAddr) -> ([u8; 28], u32) {
        let mut buf = [0u8; 28];
        match addr {
            super::SocketAddr::V4(v4) => {
                buf[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v4.ip().octets());
                (buf, 16)
            }
            super::SocketAddr::V6(v6) => {
                buf[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
                buf[8..24].copy_from_slice(&v6.ip().octets());
                buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                (buf, 28)
            }
        }
    }

    /// Non-blocking `socket(2)` + `connect(2)`. Returns the raw fd and
    /// whether the connect completed synchronously (loopback usually
    /// does); `false` means the handshake is in flight and completion
    /// arrives as a WRITABLE epoll event.
    pub fn connect_nonblocking(addr: &super::SocketAddr) -> io::Result<(i32, bool)> {
        let family = match addr {
            super::SocketAddr::V4(_) => i32::from(AF_INET),
            super::SocketAddr::V6(_) => i32::from(AF_INET6),
        };
        let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
        let (buf, len) = sockaddr_bytes(addr);
        let ret = unsafe { connect(fd, buf.as_ptr(), len) };
        if ret == 0 {
            return Ok((fd, true));
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINPROGRESS) {
            Ok((fd, false))
        } else {
            close_fd(fd);
            Err(err)
        }
    }
}

/// Associates a registered descriptor with the events it produces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

/// Readiness interest for a registration: readable, writable, or both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (includes peer-close via `EPOLLRDHUP`).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (mio's non-const `|` spelling).
    #[allow(clippy::should_implement_trait)] // upstream mio's method name
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Removes `other` from this interest; `None` if nothing remains.
    pub fn remove(self, other: Interest) -> Option<Interest> {
        let left = self.0 & !other.0;
        (left != 0).then_some(Interest(left))
    }

    /// Whether this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_mask(self) -> u32 {
        let mut mask = 0;
        if self.is_readable() {
            mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event out of [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    mask: u32,
}

impl Event {
    /// The token the ready descriptor was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read-ready — including error and hangup conditions, mirroring mio:
    /// the handler's next read surfaces the actual error or EOF.
    pub fn is_readable(&self) -> bool {
        self.mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// Write-ready — including error and hangup conditions, so a failed
    /// async connect (which reports only `EPOLLERR|EPOLLHUP`) still
    /// reaches the writable path that checks `take_error`.
    pub fn is_writable(&self) -> bool {
        self.mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Whether the kernel flagged an error condition on the descriptor.
    pub fn is_error(&self) -> bool {
        self.mask & sys::EPOLLERR != 0
    }

    /// Whether the peer closed (full or write-half hangup).
    pub fn is_hup(&self) -> bool {
        self.mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// A reusable batch of readiness events, filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
}

impl Events {
    /// A batch that receives at most `cap` events per poll.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: Vec::with_capacity(cap.max(1)),
        }
    }

    /// Number of events in the current batch.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the current batch is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterates the current batch.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().map(|raw| Event {
            token: Token(raw.data as usize),
            // Copy out of the (possibly packed) struct field by value.
            mask: { raw.events },
        })
    }
}

/// An epoll instance: registrations plus the wait loop.
///
/// Level-triggered: a registered descriptor reports readiness on every
/// poll until the condition is consumed, so missed events cannot strand a
/// connection — at worst they cost a spurious wakeup.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::epoll_create()?,
        })
    }

    /// Registers `source` for `interest`, delivering events as `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_add(
            self.epfd,
            source.as_raw_fd(),
            interest.epoll_mask(),
            token.0 as u64,
        )
    }

    /// Changes the interest set of an already-registered `source`.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_mod(
            self.epfd,
            source.as_raw_fd(),
            interest.epoll_mask(),
            token.0 as u64,
        )
    }

    /// Removes `source` from the interest set. (Closing the descriptor
    /// also deregisters it implicitly; this is for keeping a live socket
    /// out of the poll set.)
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_del(self.epfd, source.as_raw_fd())
    }

    /// Waits for readiness, filling `events` (up to its capacity).
    /// `None` blocks indefinitely; `Some(d)` rounds the timeout *up* to
    /// whole milliseconds so a 200µs deadline cannot spin at 0ms.
    /// Returns the number of events; 0 on timeout or `EINTR`.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_micros().div_ceil(1000);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        sys::epoll_wait_into(self.epfd, &mut events.buf, timeout_ms)
    }
}

impl AsRawFd for Poll {
    fn as_raw_fd(&self) -> RawFd {
        self.epfd
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

struct WakerFd(RawFd);

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys::close_fd(self.0);
    }
}

/// Cross-thread wakeup for a [`Poll`] blocked in [`Poll::poll`], backed
/// by an `eventfd`. Cheap to clone; all clones signal the same poll.
///
/// The eventfd is registered level-triggered, so after a wakeup event the
/// poll owner must call [`Waker::drain`] to reset it — the reactor does
/// this when it sees the waker's token.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<WakerFd>,
}

impl Waker {
    /// Creates a waker registered on `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let fd = WakerFd(sys::eventfd_new()?);
        sys::epoll_add(poll.as_raw_fd(), fd.0, sys::EPOLLIN, token.0 as u64)?;
        Ok(Waker { fd: Arc::new(fd) })
    }

    /// Wakes the poll. Callable from any thread; never blocks.
    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_signal(self.fd.0)
    }

    /// Resets the eventfd after its readable event was observed.
    pub fn drain(&self) {
        sys::eventfd_drain(self.fd.0);
    }
}

/// Sets `O_NONBLOCK` on any descriptor-backed handle via `fcntl` —
/// listeners before registration, accepted streams before handoff.
pub fn set_nonblocking(source: &impl AsRawFd) -> io::Result<()> {
    sys::set_nonblocking_fd(source.as_raw_fd())
}

/// A non-blocking outbound connection attempt.
pub struct Dial {
    /// The socket, already non-blocking. Until [`Dial::ready`] the
    /// handshake is in flight: register for WRITABLE and check
    /// [`TcpStream::take_error`] when the event arrives.
    pub stream: TcpStream,
    /// Whether `connect` completed synchronously.
    pub ready: bool,
}

/// Starts a non-blocking TCP connect to `addr` (std's `TcpStream::connect`
/// has no non-blocking form). The returned socket is owned by the `Dial`;
/// dropping it closes the fd.
pub fn dial(addr: &SocketAddr) -> io::Result<Dial> {
    let (fd, ready) = sys::connect_nonblocking(addr)?;
    // SAFETY-by-construction: `fd` is a fresh, owned socket descriptor
    // that nothing else references; `from_raw_fd` transfers that
    // ownership into the TcpStream. This is the crate's one conversion
    // point between the FFI layer and std types.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    Ok(Dial { stream, ready })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_after_peer_write() {
        let (mut a, b) = pair();
        set_nonblocking(&b).unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&b, Token(7), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a zero timeout returns empty.
        let n = poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);

        a.write_all(b"ping").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.token(), Token(7));
        assert!(event.is_readable());

        let mut buf = [0u8; 4];
        b.try_clone().unwrap().read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        // Level-triggered: once consumed, readiness clears.
        let n = poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0, "consumed socket must not stay readable");
    }

    #[test]
    fn nonblocking_read_would_block() {
        let (_a, mut b) = pair();
        set_nonblocking(&b).unwrap();
        let mut buf = [0u8; 4];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn interest_combination_and_rearm() {
        let (_a, b) = pair();
        set_nonblocking(&b).unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&b, Token(1), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        // An idle socket with write interest reports writable immediately.
        poll.reregister(&b, Token(1), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().is_writable());
        // Dropping write interest silences it again.
        poll.reregister(&b, Token(1), Interest::READABLE).unwrap();
        let n = poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
        assert!(Interest::READABLE.add(Interest::WRITABLE).is_writable());
        assert_eq!(
            (Interest::READABLE | Interest::WRITABLE).remove(Interest::WRITABLE),
            Some(Interest::READABLE)
        );
        assert_eq!(Interest::READABLE.remove(Interest::READABLE), None);
    }

    #[test]
    fn waker_crosses_threads() {
        let mut poll = Poll::new().unwrap();
        let waker = Waker::new(&poll, Token(0)).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));
        waker.drain();
        // Drained: quiet again until the next wake.
        let n = poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
        // Coalescing: two wakes before a drain are one event, and wake
        // never errors even when the counter is already nonzero.
        waker.wake().unwrap();
        waker.wake().unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        waker.drain();
        handle.join().unwrap();
    }

    #[test]
    fn dial_completes_against_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialed = dial(&addr).unwrap();
        let mut poll = Poll::new().unwrap();
        if !dialed.ready {
            poll.register(&dialed.stream, Token(3), Interest::WRITABLE)
                .unwrap();
            let mut events = Events::with_capacity(4);
            let n = poll
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
        }
        assert!(dialed.stream.take_error().unwrap().is_none());
        let (mut accepted, _) = listener.accept().unwrap();
        accepted.write_all(b"ok").unwrap();
        drop(accepted);
        let mut out = Vec::new();
        let mut stream = dialed.stream;
        // The dialed socket is non-blocking; spin briefly for the bytes.
        let start = std::time::Instant::now();
        loop {
            match stream.read_to_end(&mut out) {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(start.elapsed() < Duration::from_secs(5));
                    std::thread::yield_now();
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        assert_eq!(out, b"ok");
    }

    #[test]
    fn dial_to_dead_port_reports_the_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let dialed = match dial(&addr) {
            Ok(d) => d,
            Err(_) => return, // synchronous refusal is also a pass
        };
        if dialed.ready {
            // Connected to something unexpected — the port was reused.
            return;
        }
        let mut poll = Poll::new().unwrap();
        poll.register(&dialed.stream, Token(9), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert!(
            event.is_writable(),
            "failed connect must reach the writable path"
        );
        assert!(
            dialed.stream.take_error().unwrap().is_some(),
            "SO_ERROR must carry the refusal"
        );
    }
}
