//! Offline compatibility shim for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`
//! builder knobs, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — backed by a small wall-clock harness: warm up
//! for the configured time, then run timed batches for the measurement
//! window and report mean ns/iteration. No statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.to_string(), &mut f);
        self
    }
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    mode: Mode,
    /// Total time spent inside `iter` routines in timed mode.
    elapsed: Duration,
    /// Iterations executed in timed mode.
    iters: u64,
}

enum Mode {
    WarmUp { budget: Duration },
    Timed { batch: u64 },
}

impl Bencher {
    /// Runs `routine` repeatedly, timing it in measurement mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    std_black_box(routine());
                }
            }
            Mode::Timed { batch } => {
                let start = Instant::now();
                for _ in 0..batch {
                    std_black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iters += batch;
            }
        }
    }
}

fn run_one(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass; also sizes the timed batches.
    let mut warm = Bencher {
        mode: Mode::WarmUp {
            budget: criterion.warm_up,
        },
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);

    // Calibration: one-shot batch to pick a batch size that fills the
    // measurement window across `sample_size` samples.
    let mut probe = Bencher {
        mode: Mode::Timed { batch: 1 },
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut probe);
    let per_iter = (probe.elapsed.as_nanos().max(1) / probe.iters.max(1) as u128).max(1);
    let target_ns = criterion.measurement.as_nanos() / criterion.sample_size.max(1) as u128;
    let batch = (target_ns / per_iter).clamp(1, u64::MAX as u128) as u64;

    let mut bench = Bencher {
        mode: Mode::Timed { batch },
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..criterion.sample_size {
        f(&mut bench);
    }
    let mean_ns = bench.elapsed.as_nanos() as f64 / bench.iters.max(1) as f64;
    println!(
        "bench {label:<48} {mean_ns:>14.1} ns/iter ({} iters)",
        bench.iters
    );
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = quick();
        let mut runs = 0u64;
        criterion.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_format() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
