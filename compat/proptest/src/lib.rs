//! Offline compatibility shim for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `any::<T>()`, `collection::vec`, the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Compared to real proptest there is **no shrinking**: a failing case
//! panics with the failure message and the case's seed. Generation is fully
//! deterministic: case `k` of every test uses a fixed seed derived from `k`,
//! so failures reproduce across runs without a persistence file.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_B00B,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `span` (`span ≥ 1`).
    pub fn below(&mut self, span: u64) -> u64 {
        if span <= 1 {
            return 0;
        }
        let zone = u64::MAX - ((u64::MAX % span) + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with fresh
    /// ones.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Result type threaded through generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            map_fn,
        }
    }
}

/// Strategy adaptor for [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map_fn: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-range strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: runs `config.cases` successful cases, retrying
/// rejected ones (up to a cap) and panicking on the first failure.
pub fn run_cases<F>(config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut successes = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 32 + 256;
    while successes < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "too many inputs rejected by prop_assume! ({attempts} attempts, \
             {successes}/{} cases)",
            config.cases
        );
        let mut rng = TestRng::new(attempts.wrapping_mul(0xA076_1D64_78BD_642F));
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed on case seed {attempts}: {msg}")
            }
        }
    }
}

/// Debug-formats a generated value for failure messages.
pub fn describe_value<T: fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&$strategy, __proptest_rng);)+
                let mut __proptest_case = move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts inside a property body, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Input filter inside a property body, mirroring `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..9, s in 0u64..100) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(s < 100, "s = {s}");
        }

        /// Tuples, maps and vec strategies compose.
        #[test]
        fn composition(v in crate::collection::vec(any::<u64>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }

        /// Assume rejects odd inputs; only evens reach the body.
        #[test]
        fn assume_filters(n in 0u64..50) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strategy = (0u64..1000, 0usize..10).prop_map(|(a, b)| a + b as u64);
        let mut rng1 = crate::TestRng::new(5);
        let mut rng2 = crate::TestRng::new(5);
        for _ in 0..20 {
            assert_eq!(strategy.generate(&mut rng1), strategy.generate(&mut rng2));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases(ProptestConfig::with_cases(4), |rng| {
            let v = rng.next_u64() | 1; // always odd
            crate::prop_assert!(v % 2 == 0, "forced failure");
            Ok(())
        });
    }
}
