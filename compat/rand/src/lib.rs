//! Offline compatibility shim for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly the subset this workspace uses: `RngCore`,
//! `SeedableRng::{from_seed, seed_from_u64}`, the `Rng` extension trait with
//! `gen_range`/`gen_bool`, and `seq::SliceRandom::{choose, shuffle}`.
//! Sampling is unbiased (rejection sampling), deterministic per seed, and
//! has no platform dependence — but the exact streams differ from upstream
//! rand, which is fine because nothing in the workspace pins golden values
//! to upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same construction as
    /// upstream rand, though streams are not bit-compatible).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the backbone of the test RNGs.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform value in `0..span` (`span ≥ 1`), unbiased via rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // Largest v with (v + 1) a multiple of span; accept v ≤ zone.
    let zone = u64::MAX - ((u64::MAX % span) + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges that can be sampled from, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq`.

    use super::{uniform_below, RngCore};

    /// `choose`/`shuffle` on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct TestRng(SplitMix64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng(SplitMix64(7));
        for _ in 0..2000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(0u64..=9);
            assert!(c <= 9);
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = TestRng(SplitMix64(1));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng(SplitMix64(3));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
