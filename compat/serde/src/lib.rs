//! Offline compatibility shim for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be vendored. The repo's types keep
//! their `#[derive(Serialize, Deserialize)]` annotations (so swapping the
//! real serde back in is a one-line Cargo change), but the derives expand to
//! nothing and the traits are inert markers.
//!
//! Actual wire serialization in this workspace is hand-rolled: see
//! `prcc_clock::encoding` (varint counters), `prcc_clock::WireClock`, and
//! `prcc_service::wire` (length-prefixed frames), which together form the
//! real, tested serialization path used by the TCP deployment.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}
