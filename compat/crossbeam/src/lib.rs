//! Offline compatibility shim for `crossbeam` — just the `channel` module.
//!
//! Implements an unbounded MPMC channel (both `Sender` and `Receiver` are
//! cloneable, unlike `std::sync::mpsc`) on a mutex + condvar. Throughput is
//! below real crossbeam's lock-free queues but semantics match what the
//! threaded runtime needs: many producers, a pool of competing consumers,
//! and disconnect-on-last-drop on either side.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPMC channels, mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (consumers compete for messages).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; holds
    /// the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Non-blocking receive; `None` when currently empty (regardless of
        /// disconnection).
        pub fn try_recv(&self) -> Option<T> {
            lock(&self.shared).queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::thread;

    #[test]
    fn mpmc_delivers_everything_exactly_once() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
